"""ANA001-ANA004 analyses: positive/negative fixtures, chains, baseline."""

from __future__ import annotations

import pathlib

import repro
from repro.sanitize.analyze import (
    analyze_paths,
    apply_baseline,
    load_baseline,
    write_baseline,
)

SRC = pathlib.Path(repro.__file__).resolve().parent


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def copy_real(tmp_path, *relpaths):
    """Copy real package files into a fixture tree, preserving layout."""
    files = {
        f"repro/{rel}": (SRC / rel).read_text(encoding="utf-8")
        for rel in relpaths
    }
    return write_tree(tmp_path, files)


def codes(report):
    return [v.code for v in report.violations]


class TestTaintANA001:
    def test_cross_module_taint_with_full_chain(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "from repro.sim.clockuser import ambient\n"
                "def run_digest(result):\n"
                "    return _mix(result)\n"
                "def _mix(result):\n"
                "    return ambient()\n"
            ),
            "repro/sim/clockuser.py": (
                "import time\n"
                "def ambient():\n"
                "    return time.time()\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA001"]
        finding = report.violations[0]
        assert finding.path.endswith("clockuser.py")
        assert finding.line == 3  # anchored at the time.time() call
        assert "time.time()" in finding.message
        assert "run_digest" in finding.message
        # Full source->sink chain, root first.
        assert [f.split(" ")[0] for f in finding.chain] == [
            "run_digest", "_mix", "ambient",
        ]
        assert "clockuser.py:2" in finding.chain[-1]

    def test_taint_propagates_through_relative_imports(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/sim/__init__.py": "",
            "repro/sim/digest.py": (
                "from . import helper\n"
                "def run_digest(result):\n"
                "    return helper.stamp(result)\n"
            ),
            "repro/sim/helper.py": (
                "import time\n"
                "def stamp(result):\n"
                "    return (time.time(), result)\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA001"]
        finding = report.violations[0]
        assert finding.path.endswith("helper.py")
        assert [f.split(" ")[0] for f in finding.chain] == ["run_digest", "stamp"]

    def test_unreachable_source_is_not_flagged(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "import time\n"
                "def run_digest(result):\n"
                "    return repr(result)\n"
                "def unrelated():\n"
                "    return time.time()\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_observational_regions_are_excluded(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "from repro.obs.meter import stamp\n"
                "def run_digest(result):\n"
                "    stamp()\n"
                "    return repr(result)\n"
            ),
            "repro/obs/meter.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_environment_reads_are_sources(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "import os\n"
                "def run_digest(result):\n"
                "    return os.environ.get('HOME')\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA001"]
        assert "os.environ" in report.violations[0].message

    def test_suppression_at_source_site(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "import time\n"
                "def run_digest(result):\n"
                "    return time.time()  # sanitize: ignore[ANA001]\n"
            ),
        })
        report = analyze_paths([tree])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["ANA001"]

    def test_machine_run_is_also_a_root(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "import random\n"
                "class Machine:\n"
                "    def run(self):\n"
                "        return random.random()\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA001"]
        assert "Machine.run" in report.violations[0].chain[0]


class TestCoverageANA002:
    def fixture(self, tmp_path, *, covered: bool):
        key_line = '        "knob": ctx.knob,\n' if covered else ""
        return write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "class MachineConfig:\n"
                "    seed: int = 0\n"
                "    knob: float = 1.0\n"
            ),
            "repro/parallel/fingerprint.py": (
                "def point_key_material(ctx):\n"
                "    return {\n"
                '        "seed": ctx.seed,\n'
                + key_line
                + "    }\n"
            ),
        })

    def test_uncovered_field_is_flagged_at_its_definition(self, tmp_path):
        report = analyze_paths([self.fixture(tmp_path, covered=False)])
        assert codes(report) == ["ANA002"]
        finding = report.violations[0]
        assert finding.path.endswith("machine.py")
        assert finding.line == 3
        assert "MachineConfig.knob" in finding.message

    def test_covered_field_is_clean(self, tmp_path):
        assert analyze_paths([self.fixture(tmp_path, covered=True)]).ok

    def test_exclusion_tuple_counts_as_coverage(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "class MachineConfig:\n"
                "    knob: float = 1.0\n"
            ),
            "repro/parallel/fingerprint.py": (
                'PINNED_CONFIG_FIELDS = ("knob",)\n'
                "def point_key_material(ctx):\n"
                "    return {}\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_silent_without_fingerprint_module(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "class MachineConfig:\n"
                "    knob: float = 1.0\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_deleting_a_key_from_real_fingerprint_fails(self, tmp_path):
        tree = copy_real(
            tmp_path,
            "sim/machine.py",
            "sim/digest.py",
            "experiments/runner.py",
            "parallel/fingerprint.py",
        )
        assert analyze_paths([tree]).ok, "real files should start clean"
        fingerprint = tree / "repro/parallel/fingerprint.py"
        source = fingerprint.read_text()
        assert '"work_scale": ctx.work_scale,' in source
        fingerprint.write_text(
            source.replace('"work_scale": ctx.work_scale,\n', "")
        )
        report = analyze_paths([tree])
        assert codes(report) == ["ANA002"]
        assert "work_scale" in report.violations[0].message


class TestCoverageANA003:
    def test_unconsumed_result_field_is_flagged(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "class RunResult:\n"
                "    makespan: float = 0.0\n"
                "    surprise: int = 0\n"
            ),
            "repro/sim/digest.py": (
                "def run_digest(result):\n"
                "    return repr(result.makespan)\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA003"]
        assert "RunResult.surprise" in report.violations[0].message

    def test_exclusion_tuple_counts(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/sim/machine.py": (
                "class RunResult:\n"
                "    makespan: float = 0.0\n"
                "    surprise: int = 0\n"
            ),
            "repro/sim/digest.py": (
                'DIGEST_EXCLUDED_FIELDS = ("surprise",)\n'
                "def run_digest(result):\n"
                "    return repr(result.makespan)\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_deleting_a_field_from_real_run_digest_fails(self, tmp_path):
        tree = copy_real(
            tmp_path,
            "sim/machine.py",
            "sim/digest.py",
            "experiments/runner.py",
            "parallel/fingerprint.py",
        )
        assert analyze_paths([tree]).ok, "real files should start clean"
        digest = tree / "repro/sim/digest.py"
        source = digest.read_text()
        assert 'put("makespan", result.makespan)' in source
        digest.write_text(
            source.replace('    put("makespan", result.makespan)\n', "")
        )
        report = analyze_paths([tree])
        assert codes(report) == ["ANA003"]
        assert "RunResult.makespan" in report.violations[0].message


class TestPayloadsANA004:
    def test_unsafe_leaf_in_initargs(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "import threading\n"
                "def _init_worker(seed: int, lock: threading.Lock) -> None:\n"
                "    pass\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA004"]
        assert "threading.Lock" in report.violations[0].message

    def test_unsafe_field_deep_in_submit_return_type(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "from repro.parallel.payload import Bundle\n"
                "def _work(x: int) -> Bundle:\n"
                "    return Bundle()\n"
                "def go(pool):\n"
                "    return pool.submit(_work, 1)\n"
            ),
            "repro/parallel/payload.py": (
                "import threading\n"
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Bundle:\n"
                "    values: dict[str, float] = None\n"
                "    handle: threading.Lock = None\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA004"]
        finding = report.violations[0]
        assert finding.path.endswith("payload.py")
        assert any("Bundle.handle" in frame for frame in finding.chain)
        assert any("_work" in frame for frame in finding.chain)

    def test_safe_closure_is_clean(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "from repro.parallel.payload import Bundle\n"
                "def _init_worker(seed: int, spec: dict) -> None:\n"
                "    pass\n"
                "def _work(x: str, flag: bool) -> Bundle:\n"
                "    return Bundle()\n"
                "def go(pool):\n"
                "    return pool.submit(_work, 'a', True)\n"
            ),
            "repro/parallel/payload.py": (
                "from dataclasses import dataclass\n"
                "Point = tuple[str, str, str]\n"
                "@dataclass\n"
                "class Bundle:\n"
                "    point: Point = None\n"
                "    values: dict[str, float] = None\n"
            ),
        })
        assert analyze_paths([tree]).ok

    def test_unannotated_payload_parameter_is_unverifiable(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "def _init_worker(seed) -> None:\n"
                "    pass\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA004"]
        assert "no annotation" in report.violations[0].message

    def test_non_dataclass_payload_type_is_flagged(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "from repro.parallel.payload import Loose\n"
                "def _init_worker(seed: int, extra: Loose) -> None:\n"
                "    pass\n"
            ),
            "repro/parallel/payload.py": (
                "class Loose:\n"
                "    def __init__(self):\n"
                "        self.anything = lambda: 1\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA004"]
        assert "neither a dataclass nor a __slots__" in report.violations[0].message

    def test_callable_annotation_is_flagged(self, tmp_path):
        tree = write_tree(tmp_path, {
            "repro/parallel/executor.py": (
                "from typing import Callable\n"
                "def _init_worker(factory: Callable[[], int]) -> None:\n"
                "    pass\n"
            ),
        })
        report = analyze_paths([tree])
        assert codes(report) == ["ANA004"]


class TestBaseline:
    def fixture(self, tmp_path):
        return write_tree(tmp_path, {
            "repro/sim/digest.py": (
                "import time\n"
                "def run_digest(result):\n"
                "    return time.time()\n"
            ),
        })

    def test_round_trip_suppresses_known_findings(self, tmp_path):
        tree = self.fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tree]), baseline)
        report = analyze_paths([tree])
        matched, stale = apply_baseline(report, load_baseline(baseline))
        assert matched == 1 and stale == []
        assert report.ok

    def test_new_findings_still_fail(self, tmp_path):
        tree = self.fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tree]), baseline)
        digest = tree / "repro/sim/digest.py"
        digest.write_text(
            digest.read_text() + "def also():\n    return 1\n"
        )
        # Introduce a second, new source.
        digest.write_text(
            digest.read_text().replace(
                "    return time.time()\n",
                "    import os\n"
                "    os.urandom(4)\n"
                "    return time.time()\n",
            )
        )
        report = analyze_paths([tree])
        matched, _stale = apply_baseline(report, load_baseline(baseline))
        assert matched == 1
        assert not report.ok
        assert "os.urandom" in report.violations[0].message

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        tree = self.fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tree]), baseline)
        (tree / "repro/sim/digest.py").write_text(
            "def run_digest(result):\n    return repr(result)\n"
        )
        report = analyze_paths([tree])
        matched, stale = apply_baseline(report, load_baseline(baseline))
        assert matched == 0
        assert len(stale) == 1 and stale[0][0] == "ANA001"
        assert report.ok

    def test_identity_is_line_insensitive(self, tmp_path):
        tree = self.fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tree]), baseline)
        digest = tree / "repro/sim/digest.py"
        digest.write_text("# a new leading comment\n" + digest.read_text())
        report = analyze_paths([tree])
        matched, stale = apply_baseline(report, load_baseline(baseline))
        assert matched == 1 and stale == []
        assert report.ok
