"""The repo's own source must pass its own lint (PR acceptance criterion)."""

from __future__ import annotations

import pathlib

from repro.sanitize import lint_paths, render_text

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = lint_paths([SRC])
    assert report.files_scanned > 50
    assert report.ok, "\n" + render_text(report)
