"""Module graph + function summaries: the analysis substrate."""

from __future__ import annotations

import pathlib

from repro.sanitize.analyze.graph import ModuleGraph, module_name_for
from repro.sanitize.analyze.summaries import ProjectSummaries


def write_tree(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path`` and return it."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestModuleNames:
    def test_rooted_at_last_repro_component(self):
        path = pathlib.Path("/tmp/x/repro/sim/machine.py")
        assert module_name_for(path) == "repro.sim.machine"

    def test_init_maps_to_package(self):
        path = pathlib.Path("src/repro/sanitize/__init__.py")
        assert module_name_for(path) == "repro.sanitize"

    def test_nested_fixture_tree(self):
        path = pathlib.Path("/pytest-0/test_x0/repro/parallel/executor.py")
        assert module_name_for(path) == "repro.parallel.executor"


class TestModuleGraph:
    def test_build_and_import_edges(self, tmp_path):
        write_tree(tmp_path, {
            "repro/sim/a.py": "from repro.sim.b import helper\n",
            "repro/sim/b.py": "def helper():\n    return 1\n",
        })
        graph = ModuleGraph.build([tmp_path])
        assert set(graph.modules) == {"repro.sim.a", "repro.sim.b"}
        assert graph.modules["repro.sim.a"].imports == {"repro.sim.b"}
        assert graph.importers_of("repro.sim.b") == ["repro.sim.a"]
        assert graph.files_scanned == 2

    def test_find_by_suffix(self, tmp_path):
        write_tree(tmp_path, {"repro/sim/machine.py": "x = 1\n"})
        graph = ModuleGraph.build([tmp_path])
        info = graph.find_by_suffix("sim/machine.py")
        assert info is not None and info.name == "repro.sim.machine"
        assert graph.find_by_suffix("sim/missing.py") is None

    def test_relative_imports_resolve_to_analysed_modules(self, tmp_path):
        write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/sim/__init__.py": "",
            "repro/sim/a.py": "from . import b\nfrom ..model import speedup\n",
            "repro/sim/b.py": "def helper():\n    return 1\n",
            "repro/model/__init__.py": "",
            "repro/model/speedup.py": "x = 1\n",
        })
        graph = ModuleGraph.build([tmp_path])
        info = graph.modules["repro.sim.a"]
        assert {"repro.sim.b", "repro.model.speedup"} <= info.imports
        assert info.aliases["b"] == "repro.sim.b"
        assert info.aliases["speedup"] == "repro.model.speedup"

    def test_relative_import_above_root_is_ignored(self, tmp_path):
        write_tree(tmp_path, {
            "repro/__init__.py": "from ...outside import thing\n",
        })
        graph = ModuleGraph.build([tmp_path])
        assert "thing" not in graph.modules["repro"].aliases

    def test_parse_errors_do_not_abort_the_build(self, tmp_path):
        write_tree(tmp_path, {
            "repro/sim/ok.py": "x = 1\n",
            "repro/sim/bad.py": "def f(:\n",
        })
        graph = ModuleGraph.build([tmp_path])
        assert "repro.sim.ok" in graph.modules
        assert len(graph.parse_errors) == 1
        assert graph.parse_errors[0].code == "PARSE"


class TestSummaries:
    def build(self, tmp_path, files):
        return ProjectSummaries.build(ModuleGraph.build([write_tree(tmp_path, files)]))

    def test_qualnames_cover_methods_and_nested_defs(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/m.py": (
                "class Machine:\n"
                "    def run(self):\n"
                "        def inner():\n"
                "            return 1\n"
                "        return inner()\n"
                "def top():\n"
                "    return 2\n"
            ),
        })
        assert "repro.sim.m.Machine.run" in summaries.functions
        assert "repro.sim.m.Machine.run.inner" in summaries.functions
        assert "repro.sim.m.top" in summaries.functions
        assert summaries.functions["repro.sim.m.Machine.run"].cls == "Machine"

    def test_exact_cross_module_call_resolution(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/a.py": (
                "from repro.sim.b import helper\n"
                "def caller():\n"
                "    return helper()\n"
            ),
            "repro/sim/b.py": "def helper():\n    return 1\n",
        })
        caller = summaries.functions["repro.sim.a.caller"]
        assert [site.targets for site in caller.calls] == [("repro.sim.b.helper",)]

    def test_call_resolution_through_relative_import(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/__init__.py": "",
            "repro/sim/__init__.py": "",
            "repro/sim/a.py": (
                "from . import b\n"
                "def caller():\n"
                "    return b.helper()\n"
            ),
            "repro/sim/b.py": "def helper():\n    return 1\n",
        })
        caller = summaries.functions["repro.sim.a.caller"]
        assert [site.targets for site in caller.calls] == [("repro.sim.b.helper",)]

    def test_self_method_and_nested_call_resolution(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/m.py": (
                "class M:\n"
                "    def run(self):\n"
                "        def inner():\n"
                "            return 0\n"
                "        return self.step() + inner()\n"
                "    def step(self):\n"
                "        return 1\n"
            ),
        })
        run = summaries.functions["repro.sim.m.M.run"]
        targets = {t for site in run.calls for t in site.targets}
        assert "repro.sim.m.M.step" in targets
        assert "repro.sim.m.M.run.inner" in targets

    def test_cha_fallback_for_attribute_calls(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/m.py": (
                "class Machine:\n"
                "    def run(self):\n"
                "        return 1\n"
                "def go(machine):\n"
                "    return machine.run()\n"
            ),
        })
        go = summaries.functions["repro.sim.m.go"]
        targets = {t for site in go.calls for t in site.targets}
        assert "repro.sim.m.Machine.run" in targets

    def test_instantiation_resolves_to_init(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/m.py": (
                "class M:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "def make():\n"
                "    return M()\n"
            ),
        })
        make = summaries.functions["repro.sim.m.make"]
        targets = {t for site in make.calls for t in site.targets}
        assert "repro.sim.m.M.__init__" in targets

    def test_sources_stay_in_their_own_scope(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/m.py": (
                "import time\n"
                "def outer():\n"
                "    def inner():\n"
                "        return time.time()\n"
                "    return inner()\n"
            ),
        })
        outer = summaries.functions["repro.sim.m.outer"]
        inner = summaries.functions["repro.sim.m.outer.inner"]
        assert outer.sources == []
        assert [display for _, display, _ in inner.sources] == ["time.time()"]

    def test_find_by_suffix_and_qualname(self, tmp_path):
        summaries = self.build(tmp_path, {
            "repro/sim/digest.py": "def run_digest(result):\n    return 1\n",
        })
        found = summaries.find("sim/digest.py", "run_digest")
        assert found is not None and found.key == "repro.sim.digest.run_digest"
        assert summaries.find("sim/digest.py", "missing") is None
