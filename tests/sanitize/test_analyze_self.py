"""Self-analyze: the repo's own source passes the ANA analyses (tier-1).

Like self-lint, this is the standing hygiene gate: the fingerprint and
digest coverage contracts, the determinism taint, and the payload
pickle-safety proof must hold on every commit.  Known accepted findings
live in the committed ``.sanitize-baseline.json``; this test applies it
exactly like CI does.
"""

from __future__ import annotations

import json
import pathlib

import repro
from repro.sanitize import render_json, render_sarif
from repro.sanitize.analyze import analyze_paths, apply_baseline, load_baseline

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]
SRC = pathlib.Path(repro.__file__).resolve().parent
BASELINE = REPO_ROOT / ".sanitize-baseline.json"


def analyzed_report():
    report = analyze_paths([SRC])
    apply_baseline(report, load_baseline(BASELINE))
    return report


class TestSelfAnalyze:
    def test_repo_source_is_clean_modulo_baseline(self):
        report = analyzed_report()
        details = "\n".join(
            f"{v.path}:{v.line} {v.code} {v.message}" for v in report.violations
        )
        assert report.files_scanned > 50
        assert report.ok, f"new analysis findings:\n{details}"

    def test_baseline_file_is_committed_and_well_formed(self):
        assert BASELINE.exists(), ".sanitize-baseline.json must be committed"
        payload = json.loads(BASELINE.read_text())
        assert payload["schema"] == 1
        assert isinstance(payload["findings"], list)

    def test_coverage_contracts_checked_real_surfaces(self):
        # The contract analyses must actually have seen the real modules
        # (a path regression that hides machine.py would silently pass
        # the clean assertion above).
        from repro.sanitize.analyze.graph import ModuleGraph

        graph = ModuleGraph.build([SRC])
        for suffix, cls in (
            ("sim/machine.py", "MachineConfig"),
            ("sim/machine.py", "RunResult"),
            ("experiments/runner.py", "ExperimentContext"),
        ):
            assert graph.find_class(suffix, cls) is not None
        assert graph.find_by_suffix("parallel/fingerprint.py") is not None
        assert graph.find_by_suffix("sim/digest.py") is not None
        assert graph.find_by_suffix("parallel/executor.py") is not None


class TestSarif:
    def test_sarif_document_shape(self, tmp_path):
        tree = tmp_path / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "digest.py").write_text(
            "import time\n"
            "def run_digest(result):\n"
            "    return _now()\n"
            "def _now():\n"
            "    return time.time()\n"
        )
        report = analyze_paths([tmp_path])
        document = json.loads(render_sarif(report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "ANA001" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "ANA001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("digest.py")
        assert location["region"]["startLine"] == 5
        # The interprocedural chain rides in codeFlows.
        flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert flow[0]["location"]["message"]["text"] == "run_digest"

    def test_suppressed_findings_carry_suppression_objects(self, tmp_path):
        tree = tmp_path / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "digest.py").write_text(
            "import time\n"
            "def run_digest(result):\n"
            "    return time.time()  # sanitize: ignore[ANA001]\n"
        )
        report = analyze_paths([tmp_path])
        document = json.loads(render_sarif(report))
        result = document["runs"][0]["results"][0]
        assert result["suppressions"] == [{"kind": "inSource"}]

    def test_clean_report_has_no_results(self):
        report = analyzed_report()
        document = json.loads(render_sarif(report))
        assert document["runs"][0]["results"] == []


class TestSharedJsonSchema:
    def test_analyze_json_matches_lint_schema(self, tmp_path):
        tree = tmp_path / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "digest.py").write_text(
            "import time\n"
            "def run_digest(result):\n"
            "    return time.time()\n"
        )
        payload = json.loads(render_json(analyze_paths([tmp_path]), tool="analyze"))
        assert payload["schema"] == 1
        assert payload["tool"] == "analyze"
        assert payload["counts"] == {"active": 1, "suppressed": 0}
        violation = payload["violations"][0]
        assert set(violation) >= {
            "code", "path", "line", "col", "message", "suppressed",
        }
        assert violation["suppressed"] is False
        assert violation["chain"][0].startswith("run_digest")
