"""Lint engine mechanics: file discovery, suppressions, reporters, parsing."""

from __future__ import annotations

import json

from repro.sanitize import lint_paths, render_json, render_text, rule_catalogue
from repro.sanitize.lint import registered_rules


def write_sim_file(tmp_path, name, source):
    """Place ``source`` under a path the sim-scope rules enforce."""
    target = tmp_path / "repro" / "sim" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestDiscoveryAndScope:
    def test_directory_expansion_and_file_count(self, tmp_path):
        write_sim_file(tmp_path, "a.py", "x = 1\n")
        write_sim_file(tmp_path, "b.py", "y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        report = lint_paths([tmp_path])
        assert report.files_scanned == 2
        assert report.ok

    def test_rules_do_not_fire_outside_their_scope(self, tmp_path):
        # Wall-clock call in a file outside repro/{sim,kernel,core,schedulers}.
        out_of_scope = tmp_path / "scripts" / "helper.py"
        out_of_scope.parent.mkdir(parents=True)
        out_of_scope.write_text("import time\nnow = time.time()\n")
        report = lint_paths([out_of_scope])
        assert report.ok

    def test_single_file_argument(self, tmp_path):
        bad = write_sim_file(
            tmp_path, "clock.py", "import time\nnow = time.time()\n"
        )
        report = lint_paths([bad])
        assert [v.code for v in report.violations] == ["DET001"]

    def test_syntax_error_reported_as_parse_violation(self, tmp_path):
        bad = write_sim_file(tmp_path, "broken.py", "def f(:\n")
        report = lint_paths([bad])
        assert len(report.violations) == 1
        assert report.violations[0].code == "PARSE"
        assert not report.ok


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "now = time.time()  # sanitize: ignore[DET001]\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_line_above_suppression(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "# sanitize: ignore[DET001]\n"
            "now = time.time()\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_multi_code_suppression(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "# sanitize: ignore[DET002, DET001]\n"
            "now = time.time()\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_wrong_code_does_not_suppress(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "now = time.time()  # sanitize: ignore[OBS001]\n",
        )
        report = lint_paths([tmp_path])
        assert [v.code for v in report.violations] == ["DET001"]


class TestSuppressionExtent:
    """Continuation lines and decorated defs (not just the flagged line)."""

    def test_comment_on_a_continuation_line(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "value = max(\n"
            "    1.0,\n"
            "    time.time(),  # sanitize: ignore[DET001]\n"
            ")\n",
        )
        report = lint_paths([tmp_path])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["DET001"]

    def test_comment_on_the_statement_closing_line(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "value = max(\n"
            "    1.0,\n"
            "    time.time(),\n"
            ")  # sanitize: ignore[DET001]\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_comment_above_a_multiline_statement(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "# sanitize: ignore[DET001]\n"
            "value = max(\n"
            "    1.0,\n"
            "    time.time(),\n"
            ")\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_comment_above_decorators_of_a_flagged_def(self, tmp_path):
        # PERF001 anchors on a node inside the def body, but OBS002-style
        # def-level findings anchor on the def itself; use a violation
        # whose node is the comprehension inside a decorated hot function.
        write_sim_file(
            tmp_path, "s.py",
            "import functools\n"
            "import time\n"
            "# sanitize: ignore[DET001]\n"
            "@functools.lru_cache(\n"
            "    maxsize=time.time_ns(),\n"
            ")\n"
            "def step():\n"
            "    return 1\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_comment_on_a_decorator_line(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import functools\n"
            "import time\n"
            "@functools.lru_cache(\n"
            "    maxsize=time.time_ns(),  # sanitize: ignore[DET001]\n"
            ")\n"
            "def step():\n"
            "    return 1\n",
        )
        assert lint_paths([tmp_path]).ok

    def test_def_body_lines_do_not_suppress_the_def(self, tmp_path):
        # A suppression comment buried in the body must not silence a
        # finding anchored on the def/decorators.
        write_sim_file(
            tmp_path, "s.py",
            "import functools\n"
            "import time\n"
            "@functools.lru_cache(maxsize=time.time_ns())\n"
            "def step():\n"
            "    return 1  # sanitize: ignore[DET001]\n",
        )
        report = lint_paths([tmp_path])
        assert [v.code for v in report.violations] == ["DET001"]

    def test_suppressed_findings_are_reported_with_flag(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "now = time.time()  # sanitize: ignore[DET001]\n",
        )
        report = lint_paths([tmp_path])
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppressed is True


class TestReporters:
    def test_text_report_format(self, tmp_path):
        write_sim_file(
            tmp_path, "clock.py", "import time\nnow = time.time()\n"
        )
        text = render_text(lint_paths([tmp_path]))
        assert "clock.py:2:" in text
        assert "DET001" in text
        assert "1 file checked, 1 violation" in text

    def test_clean_text_report(self, tmp_path):
        write_sim_file(tmp_path, "ok.py", "x = 1\n")
        text = render_text(lint_paths([tmp_path]))
        assert "no violations" in text

    def test_json_report_round_trips(self, tmp_path):
        write_sim_file(
            tmp_path, "clock.py", "import time\nnow = time.time()\n"
        )
        payload = json.loads(render_json(lint_paths([tmp_path])))
        assert payload["files_scanned"] == 1
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == "DET001"
        assert payload["violations"][0]["line"] == 2

    def test_violations_sorted_by_location(self, tmp_path):
        write_sim_file(
            tmp_path, "z.py", "import time\nnow = time.time()\n"
        )
        write_sim_file(
            tmp_path, "a.py",
            "import time\na = time.time()\nb = time.monotonic()\n",
        )
        report = lint_paths([tmp_path])
        keys = [v.sort_key() for v in report.violations]
        assert keys == sorted(keys)

    def test_json_schema_and_suppressed_counts(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "a = time.time()\n"
            "b = time.time()  # sanitize: ignore[DET001]\n",
        )
        payload = json.loads(render_json(lint_paths([tmp_path])))
        assert payload["schema"] == 1
        assert payload["tool"] == "lint"
        assert payload["counts"] == {"active": 1, "suppressed": 1}
        flags = [v["suppressed"] for v in payload["violations"]]
        assert flags == [False, True]  # active findings listed first

    def test_text_report_counts_suppressed(self, tmp_path):
        write_sim_file(
            tmp_path, "s.py",
            "import time\n"
            "now = time.time()  # sanitize: ignore[DET001]\n",
        )
        text = render_text(lint_paths([tmp_path]))
        assert "no violations (1 suppressed)" in text

    def test_rule_catalogue_lists_all_codes(self):
        catalogue = rule_catalogue()
        for rule in registered_rules():
            assert rule.code in catalogue
        assert "# sanitize: ignore[CODE]" in catalogue

    def test_rule_catalogue_groups_by_family_with_rationales(self):
        catalogue = rule_catalogue()
        for heading in (
            "DET -- determinism",
            "OBS -- observability",
            "KERN -- kernel structure",
            "PERF -- hot-path performance",
            "ERR -- error handling",
            "ANA -- whole-program analyses",
        ):
            assert heading in catalogue
        # Rationales come from the check functions' docstrings.
        assert "pure function of (workload, topology, scheduler" in catalogue
        for code in ("ANA001", "ANA002", "ANA003", "ANA004"):
            assert code in catalogue
