"""Table regeneration tests."""

from __future__ import annotations

import pytest

from repro.experiments import tables
from repro.experiments.tables import (
    TABLE1_ROWS,
    characterize_benchmark,
    table1_related_work,
    table4_workloads,
)
from repro.workloads.mixes import MIXES, PAPER_THREAD_COUNTS


class TestTable1:
    def test_colab_row_is_fully_checked(self):
        colab = next(row for row in TABLE1_ROWS if row[0] == "COLAB")
        assert colab[1:] == (True, True, True, True)

    def test_only_colab_is_collaborative(self):
        collaborative = [row[0] for row in TABLE1_ROWS if row[4]]
        assert collaborative == ["COLAB"]

    def test_wash_row_matches_paper(self):
        wash = next(row for row in TABLE1_ROWS if "Jibaja" in row[0])
        assert wash[1:] == (True, True, True, False)

    def test_render_contains_all_approaches(self):
        text = table1_related_work()
        for row in TABLE1_ROWS:
            assert row[0] in text


class TestTable2:
    def test_render_from_training_report(self):
        from repro.model.training import train_speedup_model

        _model, report = train_speedup_model(
            seed=5,
            work_scale=0.08,
            n_cores=2,
            benchmarks=["radix", "lu_cb", "blackscholes", "fluidanimate"],
            replicas=1,
            n_selected=3,
        )
        text = tables.table2_speedup_model(report)
        assert "Table 2" in text
        assert "speedup =" in text
        assert "R^2" in text
        for name in report.selected_counters:
            assert name in text


class TestTable3:
    def test_fluidanimate_measures_very_high_sync(self):
        ch = characterize_benchmark("fluidanimate", seed=1, work_scale=0.2)
        assert ch.measured_sync_class == "very high"
        assert ch.paper_sync_class == "very high"

    def test_blackscholes_measures_low_sync_high_comm(self):
        ch = characterize_benchmark("blackscholes", seed=1, work_scale=0.2)
        assert ch.measured_sync_class == "low"
        assert ch.measured_comm_class == "high"

    def test_lu_cb_low_comm(self):
        ch = characterize_benchmark("lu_cb", seed=1, work_scale=0.2)
        assert ch.measured_comm_class == "low"

    def test_sync_ordering_ferret_above_blackscholes(self):
        ferret = characterize_benchmark("ferret", seed=1, work_scale=0.2)
        blackscholes = characterize_benchmark("blackscholes", seed=1, work_scale=0.2)
        assert (
            ferret.sync_events_per_second
            > blackscholes.sync_events_per_second
        )


class TestTable4:
    def test_render_lists_every_mix(self):
        text = table4_workloads()
        for index in MIXES:
            assert index in text

    def test_rendered_totals_match_paper(self):
        text = table4_workloads()
        for index, total in PAPER_THREAD_COUNTS.items():
            row = next(line for line in text.splitlines() if line.startswith(index + " "))
            assert f" {total} " in " " + " ".join(row.split()) + " "
