"""Machine-checkable version of the paper's Figure 1 argument."""

from __future__ import annotations

import pytest

from repro.experiments.motivating import run_motivating_example
from repro.schedulers import make_scheduler


@pytest.fixture(scope="module")
def outcomes():
    return {
        name: run_motivating_example(make_scheduler(name), work=20.0)
        for name in ("linux", "wash", "colab")
    }


class TestMotivatingExample:
    def test_all_applications_finish(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.alpha > 0
            assert outcome.beta > 0
            assert outcome.gamma > 0

    def test_colab_beats_the_mixed_heuristic_on_average(self, outcomes):
        """The coordinated model's claimed advantage over WASH."""
        assert outcomes["colab"].average < outcomes["wash"].average

    def test_colab_beats_linux_on_average(self, outcomes):
        assert outcomes["colab"].average < outcomes["linux"].average

    def test_gamma_is_fast_under_colab(self, outcomes):
        """γ (single high-speedup thread) belongs on the big core."""
        colab = outcomes["colab"]
        # gamma has 1.5x the work of the alpha hold phase but enjoys the
        # big core; it should not be the slowest application.
        assert colab.gamma < max(colab.alpha, colab.beta)

    def test_beta_is_not_disproportionately_penalised(self, outcomes):
        """COLAB loses β1's raw speed but avoids queueing: β under COLAB
        must not be much slower than β under WASH (which pins blockers to
        the contended big core)."""
        assert outcomes["colab"].beta <= outcomes["wash"].beta * 1.15
