"""Experiment runner tests: caching, averaging, groupings.

Everything here uses the oracle estimator and a tiny work scale so the
312-point machinery is exercised without the full sweep cost.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.multi_program import (
    THREAD_HIGH_MIN,
    group_point,
    mixes_for_group,
    summary,
)
from repro.experiments.runner import (
    CONFIGS,
    ExperimentContext,
    evaluate_mix,
    run_mix_once,
    sweep,
)
from repro.model.speedup import OracleSpeedupModel
from repro.workloads.mixes import MIXES


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        seed=11, work_scale=0.04, estimator=OracleSpeedupModel()
    )


class TestRunner:
    def test_run_mix_once_caches(self, ctx):
        first = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", True)
        second = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", True)
        assert first is second

    def test_core_orders_differ(self, ctx):
        big_first = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", True)
        little_first = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", False)
        assert big_first is not little_first

    def test_evaluate_mix_averages_orders(self, ctx):
        metrics = evaluate_mix(ctx, "Sync-1", "2B2S", "linux")
        bf = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", True)
        lf = run_mix_once(ctx, MIXES["Sync-1"], "2B2S", "linux", False)
        for app_id, name in bf.app_names.items():
            expected = (bf.app_turnaround[app_id] + lf.app_turnaround[app_id]) / 2
            assert metrics.turnarounds[name] == pytest.approx(expected)

    def test_metrics_have_expected_fields(self, ctx):
        metrics = evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        assert metrics.h_antt > 0
        assert metrics.h_stp > 0
        assert metrics.scheduler == "colab"
        assert metrics.config == "2B2S"

    def test_unknown_mix_rejected(self, ctx):
        with pytest.raises(ExperimentError):
            evaluate_mix(ctx, "Sync-99", "2B2S", "linux")

    def test_unknown_config_rejected(self, ctx):
        with pytest.raises(ExperimentError):
            evaluate_mix(ctx, "Sync-1", "3B3S", "linux")

    def test_sweep_covers_cross_product(self, ctx):
        results = sweep(ctx, ["Sync-1"], configs=("2B2S",), schedulers=("linux", "colab"))
        assert len(results) == 2
        assert {r.scheduler for r in results} == {"linux", "colab"}

    def test_topology_order_helper(self, ctx):
        topo = ctx.topology("2B4S", big_first=False)
        assert topo.specs[0].kind.value == "little"
        assert topo.n_big == 2


class TestGroupings:
    def test_class_groups(self):
        assert len(mixes_for_group("sync", "2B2S")) == 4
        assert len(mixes_for_group("rand", "4B4S")) == 10

    def test_thread_low_depends_on_config(self):
        low_small = set(mixes_for_group("thread-low", "2B2S"))
        low_large = set(mixes_for_group("thread-high", "2B2S"))
        assert low_small  # the 4-thread mixes fit on 4 cores
        assert all(MIXES[i].total_threads <= 4 for i in low_small)
        assert all(MIXES[i].total_threads >= THREAD_HIGH_MIN for i in low_large)
        low_4b4s = set(mixes_for_group("thread-low", "4B4S"))
        assert low_small < low_4b4s  # more mixes qualify on 8 cores

    def test_program_count_groups(self):
        two = mixes_for_group("2-prog", "2B2S")
        four = mixes_for_group("4-prog", "2B2S")
        assert all(MIXES[i].n_programs == 2 for i in two)
        assert all(MIXES[i].n_programs == 4 for i in four)
        assert len(two) + len(four) == 26

    def test_unknown_group_rejected(self):
        with pytest.raises(ExperimentError):
            mixes_for_group("bogus", "2B2S")

    def test_group_point_ratios(self, ctx):
        point = group_point(ctx, "sync", "2B2S", "linux")
        assert point.antt_ratio == pytest.approx(1.0)
        assert point.stp_ratio == pytest.approx(1.0)


class TestEstimatorPlumbing:
    def test_oracle_context_never_trains(self):
        ctx = ExperimentContext(
            seed=1, work_scale=0.05, estimator=OracleSpeedupModel()
        )
        estimator = ctx.get_estimator()
        assert isinstance(estimator, OracleSpeedupModel)

    def test_schedulers_share_estimator(self, ctx):
        wash = ctx.make_scheduler("wash")
        colab = ctx.make_scheduler("colab")
        assert wash.estimator is ctx.get_estimator()
        assert colab.estimator is ctx.get_estimator()

    def test_linux_has_no_estimator(self, ctx):
        linux = ctx.make_scheduler("linux")
        assert not hasattr(linux, "estimator")
