"""Figure driver tests at reduced scale (oracle model, tiny work units)."""

from __future__ import annotations

import pytest

from repro.experiments import multi_program, single_program
from repro.experiments.runner import ExperimentContext
from repro.model.speedup import OracleSpeedupModel


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        seed=13, work_scale=0.04, estimator=OracleSpeedupModel()
    )


class TestFigure4:
    def test_subset_produces_all_schedulers(self, ctx):
        results, figure = single_program.figure4(
            ctx, benchmarks=("radix", "ferret"), config="2B2S"
        )
        assert len(results) == 2
        assert set(results[0].h_ntt) == {"linux", "wash", "colab"}
        assert figure.x_labels == ["radix", "ferret", "geomean"]

    def test_h_ntt_at_least_one_ish(self, ctx):
        """2B2S can never beat the 4-big baseline by much."""
        results, _figure = single_program.figure4(
            ctx, benchmarks=("lu_cb",), config="2B2S"
        )
        for value in results[0].h_ntt.values():
            assert value > 0.8

    def test_fig4_thread_counts_are_defaults(self):
        from repro.workloads.benchmarks import BENCHMARKS

        for name in single_program.FIG4_BENCHMARKS:
            assert (
                single_program.fig4_thread_count(name)
                == BENCHMARKS[name].default_threads
            )

    def test_excluded_benchmarks_not_in_fig4(self):
        for name in ("fmm", "water_nsquared", "water_spatial"):
            assert name not in single_program.FIG4_BENCHMARKS
        assert len(single_program.FIG4_BENCHMARKS) == 12


class TestGroupedFigures:
    def test_grouped_figure_structure(self, ctx):
        panels = multi_program.grouped_figure(
            ctx, "Test", ["sync"], schedulers=("colab",)
        )
        assert len(panels) == 2  # H_ANTT + H_STP
        antt, stp = panels
        assert "H_ANTT" in antt.title
        assert "H_STP" in stp.title
        # 4 configs + 1 geomean column
        assert len(antt.x_labels) == 5
        assert len(antt.series["colab"]) == 5

    def test_geomean_column_is_geomean_of_configs(self, ctx):
        from repro.metrics.turnaround import geomean

        panels = multi_program.grouped_figure(
            ctx, "Test", ["nsync"], schedulers=("colab",)
        )
        antt = panels[0]
        values = antt.series["colab"]
        assert values[-1] == pytest.approx(geomean(values[:4]))

    def test_summary_counts_experiments(self, ctx):
        result = multi_program.summary(ctx)
        assert result.n_experiments == 26 * 4 * 3
        # Improvements are fractions, not wild numbers.
        assert -0.5 < result.colab_vs_linux_tat < 0.5
        assert -0.5 < result.wash_vs_linux_tat < 0.5
        text = result.render()
        assert "COLAB vs Linux" in text
        assert "WASH" in text
