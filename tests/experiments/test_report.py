"""Plain-text report rendering tests."""

from __future__ import annotations

import pytest

from repro.experiments.report import FigureSeries, format_table, render_figures


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"], [["xx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "long-header" in lines[0]
        # all rows have equal rendered width
        assert len(set(len(line.rstrip()) for line in lines)) >= 1
        assert "--" in lines[1]

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [["wide-cell-value"]])
        assert "wide-cell-value" in text


class TestFigureSeries:
    def test_add_and_render(self):
        figure = FigureSeries(
            title="Demo", x_labels=["a", "b"], direction="lower is better"
        )
        figure.add("linux", [1.0, 2.0])
        text = figure.render()
        assert "Demo" in text
        assert "lower is better" in text
        assert "1.000" in text
        assert "2.000" in text

    def test_mismatched_length_rejected(self):
        figure = FigureSeries(title="Demo", x_labels=["a", "b"])
        with pytest.raises(ValueError):
            figure.add("linux", [1.0])

    def test_custom_format(self):
        figure = FigureSeries(title="Demo", x_labels=["a"])
        figure.add("s", [0.123456])
        assert "0.12" in figure.render(fmt="{:.2f}")

    def test_render_figures_joins_panels(self):
        f1 = FigureSeries(title="One", x_labels=["x"])
        f1.add("s", [1.0])
        f2 = FigureSeries(title="Two", x_labels=["x"])
        f2.add("s", [2.0])
        text = render_figures([f1, f2])
        assert "One" in text
        assert "Two" in text
        assert "\n\n" in text
