"""Seed-sensitivity module tests (reduced probe, oracle model)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.sensitivity import SensitivityReport, seed_sensitivity
from repro.model.speedup import OracleSpeedupModel

SMALL_PROBE = (("Sync-1", "2B2S"), ("NSync-1", "2B2S"))


class TestSeedSensitivity:
    def test_report_shape(self):
        report = seed_sensitivity(
            seeds=[1, 2],
            work_scale=0.05,
            probe=SMALL_PROBE,
            estimator=OracleSpeedupModel(),
        )
        assert report.seeds == [1, 2]
        assert len(report.colab_vs_linux) == 2
        assert len(report.colab_vs_wash) == 2

    def test_render_mentions_every_seed(self):
        report = SensitivityReport(
            seeds=[5, 7], colab_vs_linux=[0.1, 0.12], colab_vs_wash=[0.02, 0.04]
        )
        text = report.render()
        assert "seed 5" in text
        assert "seed 7" in text
        assert "mean vs Linux" in text

    def test_statistics(self):
        report = SensitivityReport(
            seeds=[1, 2], colab_vs_linux=[0.1, 0.2], colab_vs_wash=[0.0, 0.1]
        )
        assert report.mean_vs_linux == pytest.approx(0.15)
        assert report.std_vs_linux > 0
        assert report.mean_vs_wash == pytest.approx(0.05)

    def test_single_seed_zero_std(self):
        report = SensitivityReport(
            seeds=[1], colab_vs_linux=[0.1], colab_vs_wash=[0.05]
        )
        assert report.std_vs_linux == 0.0
        assert report.std_vs_wash == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            seed_sensitivity(seeds=[], work_scale=0.05)
