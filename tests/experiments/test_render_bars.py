"""ASCII bar rendering tests."""

from __future__ import annotations

import pytest

from repro.experiments.report import FigureSeries, render_bars


def panel():
    figure = FigureSeries(
        title="Demo", x_labels=["a", "b"], direction="lower is better"
    )
    figure.add("wash", [0.9, 1.1])
    figure.add("colab", [0.8, 0.95])
    return figure


class TestRenderBars:
    def test_contains_every_bar(self):
        text = render_bars(panel())
        assert text.count("#") > 0
        for label in ("a wash", "a colab", "b wash", "b colab"):
            assert label in text

    def test_values_annotated(self):
        text = render_bars(panel())
        assert "0.800" in text
        assert "1.100" in text

    def test_reference_marker_present(self):
        text = render_bars(panel(), reference=1.0)
        assert "|" in text or "+" in text

    def test_no_reference(self):
        text = render_bars(panel(), reference=None)
        assert "|" not in text

    def test_longer_value_longer_bar(self):
        text = render_bars(panel(), width=30)
        lines = {line.strip().split()[0] + " " + line.strip().split()[1]: line
                 for line in text.splitlines()[1:]}
        bar_a_colab = lines["a colab"].count("#")
        bar_b_wash = lines["b wash"].count("#")
        assert bar_b_wash > bar_a_colab

    def test_empty_series_rejected(self):
        empty = FigureSeries(title="none", x_labels=["x"])
        with pytest.raises(ValueError):
            render_bars(empty)
