"""Property-based tests of the synchronisation primitives under load."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.sync import Mutex, Pipe, Semaphore
from repro.kernel.task import Task
from repro.schedulers.cfs import CFSScheduler
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import (
    Compute,
    LockAcquire,
    LockRelease,
    PipeGet,
    PipePut,
    SemAcquire,
    SemRelease,
)
from tests.conftest import NEUTRAL_PROFILE


def fresh_machine(n_big, n_little, seed):
    return Machine(
        make_topology(n_big, n_little),
        CFSScheduler(),
        MachineConfig(seed=seed, context_switch_cost=0.0, migration_cost=0.0),
    )


class TestPipeDelivery:
    @given(
        n_producers=st.integers(1, 3),
        n_consumers=st.integers(1, 3),
        items_each=st.integers(1, 6),
        capacity=st.integers(1, 4),
        n_big=st.integers(1, 2),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_item_delivered_exactly_once(
        self, n_producers, n_consumers, items_each, capacity, n_big, seed
    ):
        """No item is lost or duplicated under any schedule/contention."""
        machine = fresh_machine(n_big, 1, seed)
        pipe = Pipe(machine.futexes, capacity=capacity)
        consumed: list[int] = []
        done_producers = [0]

        def producer(base: int):
            for item in range(items_each):
                yield Compute(0.1)
                yield PipePut(pipe, base + item)
            done_producers[0] += 1
            if done_producers[0] == n_producers:
                for _ in range(n_consumers):
                    yield PipePut(pipe, None)

        def consumer():
            while True:
                item = yield PipeGet(pipe)
                if item is None:
                    return
                consumed.append(item)
                yield Compute(0.05)

        for p in range(n_producers):
            machine.add_task(
                Task(f"p{p}", 0, producer(p * 1000), NEUTRAL_PROFILE)
            )
        for c in range(n_consumers):
            machine.add_task(Task(f"c{c}", 1, consumer(), NEUTRAL_PROFILE))
        machine.run()

        expected = sorted(
            p * 1000 + i for p in range(n_producers) for i in range(items_each)
        )
        assert sorted(consumed) == expected

    @given(
        items=st.integers(1, 10),
        capacity=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_consumer_sees_fifo_order(self, items, capacity, seed):
        machine = fresh_machine(1, 1, seed)
        pipe = Pipe(machine.futexes, capacity=capacity)
        consumed: list[int] = []

        def producer():
            for item in range(items):
                yield Compute(0.1)
                yield PipePut(pipe, item)
            yield PipePut(pipe, None)

        def consumer():
            while True:
                item = yield PipeGet(pipe)
                if item is None:
                    return
                consumed.append(item)

        machine.add_task(Task("p", 0, producer(), NEUTRAL_PROFILE))
        machine.add_task(Task("c", 1, consumer(), NEUTRAL_PROFILE))
        machine.run()
        assert consumed == list(range(items))


class TestMutualExclusion:
    @given(
        n_threads=st.integers(2, 6),
        n_big=st.integers(1, 2),
        n_little=st.integers(0, 2),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_critical_sections_never_overlap(
        self, n_threads, n_big, n_little, seed
    ):
        """A monitor variable incremented inside the lock sees no races.

        The generators record entry/exit "timestamps" via a shared
        occupancy counter: if two tasks were ever inside simultaneously,
        the counter would exceed 1.
        """
        machine = fresh_machine(n_big, n_little, seed)
        lock = Mutex(machine.futexes)
        occupancy = [0]
        peak = [0]

        def worker():
            for _ in range(3):
                yield Compute(0.2)
                yield LockAcquire(lock)
                occupancy[0] += 1
                peak[0] = max(peak[0], occupancy[0])
                yield Compute(0.1)
                occupancy[0] -= 1
                yield LockRelease(lock)

        for i in range(n_threads):
            machine.add_task(Task(f"w{i}", i, worker(), NEUTRAL_PROFILE))
        machine.run()
        assert peak[0] == 1

    @given(
        permits=st.integers(1, 3),
        n_threads=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_semaphore_bounds_concurrent_holders(self, permits, n_threads, seed):
        machine = fresh_machine(2, 2, seed)
        sem = Semaphore(machine.futexes, permits=permits)
        occupancy = [0]
        peak = [0]

        def worker():
            yield Compute(0.1)
            yield SemAcquire(sem)
            occupancy[0] += 1
            peak[0] = max(peak[0], occupancy[0])
            yield Compute(0.3)
            occupancy[0] -= 1
            yield SemRelease(sem)

        for i in range(n_threads):
            machine.add_task(Task(f"w{i}", i, worker(), NEUTRAL_PROFILE))
        machine.run()
        assert peak[0] <= permits
