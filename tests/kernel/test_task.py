"""Task state machine and bookkeeping tests."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernel.task import CoreLabel, Task, TaskState
from tests.conftest import NEUTRAL_PROFILE, make_simple_task


class TestStateMachine:
    def test_initial_state(self):
        task = make_simple_task()
        assert task.state is TaskState.NEW
        assert not task.is_runnable
        assert not task.is_running
        assert not task.is_done

    def test_new_to_ready(self):
        task = make_simple_task()
        task.mark_ready()
        assert task.state is TaskState.READY
        assert task.is_runnable

    def test_ready_to_running(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(2, "big")
        assert task.state is TaskState.RUNNING
        assert task.running_on == 2
        assert task.last_core_kind == "big"

    def test_running_to_sleeping(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(0, "little")
        task.mark_sleeping()
        assert task.state is TaskState.SLEEPING
        assert task.running_on is None

    def test_sleeping_to_ready(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(0, "big")
        task.mark_sleeping()
        task.mark_ready()
        assert task.is_runnable

    def test_running_to_done_records_finish_time(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(0, "big")
        task.mark_done(now=12.5)
        assert task.is_done
        assert task.finish_time == 12.5

    def test_cannot_run_from_new(self):
        task = make_simple_task()
        with pytest.raises(KernelError):
            task.mark_running(0, "big")

    def test_cannot_sleep_when_ready(self):
        task = make_simple_task()
        task.mark_ready()
        with pytest.raises(KernelError):
            task.mark_sleeping()

    def test_cannot_finish_when_sleeping(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(0, "big")
        task.mark_sleeping()
        with pytest.raises(KernelError):
            task.mark_done(now=1.0)

    def test_cannot_ready_a_done_task(self):
        task = make_simple_task()
        task.mark_ready()
        task.mark_running(0, "big")
        task.mark_done(now=1.0)
        with pytest.raises(KernelError):
            task.mark_ready()

    def test_error_message_names_task(self):
        task = make_simple_task(name="victim")
        with pytest.raises(KernelError, match="victim"):
            task.mark_sleeping()


class TestBookkeeping:
    def test_tids_are_unique_and_increasing(self):
        a = make_simple_task("a")
        b = make_simple_task("b")
        assert b.tid == a.tid + 1

    def test_affinity_unset_allows_everything(self):
        task = make_simple_task()
        assert task.allows_core(0)
        assert task.allows_core(99)

    def test_affinity_mask_restricts(self):
        task = make_simple_task()
        task.affinity = frozenset({1, 3})
        assert task.allows_core(1)
        assert task.allows_core(3)
        assert not task.allows_core(0)

    def test_default_label_is_any(self):
        assert make_simple_task().core_label is CoreLabel.ANY

    def test_true_speedup_uses_profile_by_default(self):
        task = make_simple_task(profile=NEUTRAL_PROFILE)
        assert task.true_speedup() == pytest.approx(NEUTRAL_PROFILE.speedup())

    def test_true_speedup_prefers_segment_override(self):
        from repro.workloads.actions import Compute

        task = make_simple_task(profile=NEUTRAL_PROFILE)
        task.current_segment = Compute(1.0, speedup=2.5)
        assert task.true_speedup() == 2.5

    def test_segment_without_override_falls_back(self):
        from repro.workloads.actions import Compute

        task = make_simple_task(profile=NEUTRAL_PROFILE)
        task.current_segment = Compute(1.0)
        assert task.true_speedup() == pytest.approx(NEUTRAL_PROFILE.speedup())

    def test_initial_accounting_zero(self):
        task = make_simple_task()
        assert task.vruntime == 0.0
        assert task.sum_exec_runtime == 0.0
        assert task.caused_wait_time == 0.0
        assert task.exec_time_by_kind == {"big": 0.0, "little": 0.0}

    def test_repr_contains_name_and_state(self):
        task = make_simple_task(name="repr-me")
        text = repr(task)
        assert "repr-me" in text
        assert "new" in text
