"""Runqueue semantics: enqueue/dequeue, ordering, selection primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel.runqueue import RunQueue
from tests.conftest import make_simple_task


def ready_task(name="t", vruntime=0.0, blocking=0.0):
    task = make_simple_task(name=name)
    task.mark_ready()
    task.vruntime = vruntime
    task.blocking_level = blocking
    return task


class TestEnqueueDequeue:
    def test_enqueue_sets_rq_core_id(self):
        rq = RunQueue(core_id=3)
        task = ready_task()
        rq.enqueue(task)
        assert task.rq_core_id == 3
        assert task in rq
        assert len(rq) == 1

    def test_enqueue_requires_ready_state(self):
        rq = RunQueue(0)
        task = make_simple_task()
        with pytest.raises(KernelError):
            rq.enqueue(task)

    def test_double_enqueue_rejected(self):
        rq = RunQueue(0)
        task = ready_task()
        rq.enqueue(task)
        with pytest.raises(KernelError):
            rq.enqueue(task)

    def test_enqueue_on_two_queues_rejected(self):
        rq0, rq1 = RunQueue(0), RunQueue(1)
        task = ready_task()
        rq0.enqueue(task)
        with pytest.raises(KernelError):
            rq1.enqueue(task)

    def test_dequeue_clears_rq_core_id(self):
        rq = RunQueue(0)
        task = ready_task()
        rq.enqueue(task)
        rq.dequeue(task)
        assert task.rq_core_id is None
        assert task not in rq
        assert len(rq) == 0

    def test_dequeue_absent_rejected(self):
        rq = RunQueue(0)
        with pytest.raises(KernelError):
            rq.dequeue(ready_task())

    def test_requeue_rekeys_after_vruntime_change(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=1.0)
        b = ready_task("b", vruntime=2.0)
        rq.enqueue(a)
        rq.enqueue(b)
        a.vruntime = 5.0
        rq.requeue(a)
        assert rq.peek_min() is b


class TestSelection:
    def test_peek_min_orders_by_vruntime(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=3.0)
        b = ready_task("b", vruntime=1.0)
        c = ready_task("c", vruntime=2.0)
        for t in (a, b, c):
            rq.enqueue(t)
        assert rq.peek_min() is b

    def test_pop_min_removes(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=3.0)
        b = ready_task("b", vruntime=1.0)
        rq.enqueue(a)
        rq.enqueue(b)
        assert rq.pop_min() is b
        assert rq.pop_min() is a
        assert rq.pop_min() is None

    def test_equal_vruntime_breaks_ties_by_tid(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=1.0)
        b = ready_task("b", vruntime=1.0)
        rq.enqueue(b)
        rq.enqueue(a)
        assert rq.pop_min() is a  # lower tid first

    def test_max_blocking_picks_highest(self):
        rq = RunQueue(0)
        a = ready_task("a", blocking=1.0)
        b = ready_task("b", blocking=5.0)
        c = ready_task("c", blocking=2.0)
        for t in (a, b, c):
            rq.enqueue(t)
        assert rq.max_blocking() is b

    def test_max_blocking_tie_prefers_lower_vruntime(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=4.0, blocking=2.0)
        b = ready_task("b", vruntime=1.0, blocking=2.0)
        rq.enqueue(a)
        rq.enqueue(b)
        assert rq.max_blocking() is b

    def test_max_blocking_custom_metric(self):
        rq = RunQueue(0)
        a = ready_task("a", blocking=9.0)
        a.predicted_speedup = 1.0
        b = ready_task("b", blocking=0.0)
        b.predicted_speedup = 2.5
        rq.enqueue(a)
        rq.enqueue(b)
        assert rq.max_blocking(key=lambda t: t.predicted_speedup) is b

    def test_max_blocking_empty(self):
        assert RunQueue(0).max_blocking() is None

    def test_best_with_arbitrary_key(self):
        rq = RunQueue(0)
        a = ready_task("a", vruntime=1.0)
        b = ready_task("b", vruntime=9.0)
        rq.enqueue(a)
        rq.enqueue(b)
        picked = rq.best(lambda t: (-t.vruntime, t.tid))
        assert picked is b

    def test_best_empty(self):
        assert RunQueue(0).best(lambda t: (0,)) is None

    def test_tasks_iterates_in_vruntime_order(self):
        rq = RunQueue(0)
        tasks = [ready_task(str(i), vruntime=float(10 - i)) for i in range(5)]
        for t in tasks:
            rq.enqueue(t)
        assert [t.vruntime for t in rq.tasks()] == sorted(
            t.vruntime for t in tasks
        )


class TestMinVruntime:
    def test_pop_min_advances_watermark_to_popped(self):
        """The popped task becomes "curr": min(curr, leftmost) = curr."""
        rq = RunQueue(0)
        rq.enqueue(ready_task("a", vruntime=2.0))
        rq.enqueue(ready_task("b", vruntime=7.0))
        rq.pop_min()
        assert rq.min_vruntime == 2.0
        rq.pop_min()
        assert rq.min_vruntime == 7.0

    def test_watermark_never_regresses(self):
        rq = RunQueue(0)
        rq.enqueue(ready_task("a", vruntime=10.0))
        rq.pop_min()
        assert rq.min_vruntime == 10.0
        rq.enqueue(ready_task("b", vruntime=1.0))
        rq.update_min_vruntime(None)
        assert rq.min_vruntime == 10.0

    def test_update_considers_running_task(self):
        rq = RunQueue(0)
        rq.enqueue(ready_task("a", vruntime=8.0))
        rq.update_min_vruntime(running_vruntime=5.0)
        assert rq.min_vruntime == 5.0

    def test_update_on_empty_queue_with_running(self):
        rq = RunQueue(0)
        rq.update_min_vruntime(running_vruntime=4.0)
        assert rq.min_vruntime == 4.0

    def test_update_noop_when_idle_and_empty(self):
        rq = RunQueue(0)
        rq.update_min_vruntime(None)
        assert rq.min_vruntime == 0.0


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1e4), st.floats(0, 100)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_pop_min_is_sorted_and_max_blocking_is_max(self, specs):
        rq = RunQueue(0)
        tasks = []
        for i, (vrt, blk) in enumerate(specs):
            task = ready_task(f"t{i}", vruntime=vrt, blocking=blk)
            rq.enqueue(task)
            tasks.append(task)
        top = rq.max_blocking()
        assert top.blocking_level == max(t.blocking_level for t in tasks)
        popped = []
        while len(rq):
            popped.append(rq.pop_min().vruntime)
        assert popped == sorted(popped)
