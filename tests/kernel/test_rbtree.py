"""Unit and property-based tests for the red-black tree (CFS timeline)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.rbtree import RBTree


def make_tree(pairs):
    tree = RBTree()
    for key, value in pairs:
        tree.insert(key, value)
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = RBTree()
        assert len(tree) == 0
        assert not tree
        assert tree.leftmost() is None
        assert tree.pop_leftmost() is None
        assert list(tree.items()) == []

    def test_single_insert(self):
        tree = RBTree()
        tree.insert((1.0, 1), "a")
        assert len(tree) == 1
        assert tree.leftmost() == ((1.0, 1), "a")
        assert (1.0, 1) in tree

    def test_insert_many_ordered_iteration(self):
        keys = [(float(i), i) for i in (5, 3, 8, 1, 9, 2, 7, 4, 6, 0)]
        tree = make_tree((k, k[1]) for k in keys)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_duplicate_key_rejected(self):
        tree = make_tree([((1.0, 1), "a")])
        with pytest.raises(KeyError):
            tree.insert((1.0, 1), "b")

    def test_same_float_different_tiebreak_allowed(self):
        tree = RBTree()
        tree.insert((1.0, 1), "a")
        tree.insert((1.0, 2), "b")
        assert len(tree) == 2
        assert tree.leftmost() == ((1.0, 1), "a")

    def test_get(self):
        tree = make_tree([((1.0, 1), "a"), ((2.0, 2), "b")])
        assert tree.get((2.0, 2)) == "b"
        assert tree.get((3.0, 3)) is None
        assert tree.get((3.0, 3), "x") == "x"

    def test_remove_returns_value(self):
        tree = make_tree([((1.0, 1), "a"), ((2.0, 2), "b")])
        assert tree.remove((1.0, 1)) == "a"
        assert len(tree) == 1
        assert (1.0, 1) not in tree

    def test_remove_missing_raises(self):
        tree = RBTree()
        with pytest.raises(KeyError):
            tree.remove((1.0, 1))

    def test_pop_leftmost_order(self):
        keys = [(float(i), i) for i in (4, 2, 6, 1, 3, 5, 7)]
        tree = make_tree((k, k[1]) for k in keys)
        popped = []
        while tree:
            popped.append(tree.pop_leftmost()[0])
        assert popped == sorted(keys)

    def test_clear(self):
        tree = make_tree([((float(i), i), i) for i in range(10)])
        tree.clear()
        assert len(tree) == 0
        assert tree.leftmost() is None
        tree.insert((1.0, 1), "a")
        assert len(tree) == 1

    def test_keys_and_values(self):
        tree = make_tree([((2.0, 2), "b"), ((1.0, 1), "a")])
        assert list(tree.keys()) == [(1.0, 1), (2.0, 2)]
        assert list(tree.values()) == ["a", "b"]

    def test_leftmost_updates_on_smaller_insert(self):
        tree = make_tree([((5.0, 5), 5)])
        tree.insert((1.0, 1), 1)
        assert tree.leftmost()[0] == (1.0, 1)

    def test_leftmost_updates_on_removal(self):
        tree = make_tree([((1.0, 1), 1), ((2.0, 2), 2), ((3.0, 3), 3)])
        tree.remove((1.0, 1))
        assert tree.leftmost()[0] == (2.0, 2)

    def test_invariants_after_sequential_ops(self):
        tree = RBTree()
        for i in range(100):
            tree.insert((float(i % 17), i), i)
            tree.check_invariants()
        for i in range(0, 100, 3):
            tree.remove((float(i % 17), i))
            tree.check_invariants()


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(-1e6, 1e6), st.integers(0, 10_000)),
            unique_by=lambda pair: pair,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_model(self, pairs):
        """Tree iteration always equals the sorted reference model."""
        tree = RBTree()
        model = {}
        for key in pairs:
            tree.insert(key, key[1])
            model[key] = key[1]
            tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(model)
        assert len(tree) == len(model)

    @given(
        st.lists(
            st.tuples(st.floats(-1e3, 1e3), st.integers(0, 500)),
            unique_by=lambda pair: pair,
            min_size=1,
            max_size=120,
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_removals_keep_invariants(self, pairs, data):
        """Removing any subset in any order preserves the RB invariants."""
        tree = RBTree()
        for key in pairs:
            tree.insert(key, None)
        remaining = list(pairs)
        n_remove = data.draw(st.integers(0, len(remaining)))
        for _ in range(n_remove):
            index = data.draw(st.integers(0, len(remaining) - 1))
            key = remaining.pop(index)
            tree.remove(key)
            tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(remaining)

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.integers(0, 100)),
            unique_by=lambda pair: pair,
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_pop_leftmost_is_total_sort(self, pairs):
        tree = RBTree()
        for key in pairs:
            tree.insert(key, None)
        popped = []
        while tree:
            popped.append(tree.pop_leftmost()[0])
            tree.check_invariants()
        assert popped == sorted(pairs)

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.integers(0, 100)),
            unique_by=lambda pair: pair,
            min_size=2,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_insert_remove(self, pairs):
        """Insert half, remove a quarter, insert the rest: model still agrees."""
        half = len(pairs) // 2
        tree = RBTree()
        model = set()
        for key in pairs[:half]:
            tree.insert(key, None)
            model.add(key)
        for key in pairs[: half // 2]:
            tree.remove(key)
            model.discard(key)
        for key in pairs[half:]:
            tree.insert(key, None)
            model.add(key)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(model)
