"""Synchronisation primitive tests (mutex, barrier, condvar, pipe)."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernel.futex import FutexTable
from repro.kernel.sync import BLOCKED, Barrier, CondVar, Mutex, Pipe
from tests.conftest import make_simple_task


def running_task(name="t"):
    task = make_simple_task(name=name)
    task.mark_ready()
    task.mark_running(0, "big")
    return task


@pytest.fixture
def table():
    return FutexTable()


class TestMutex:
    def test_uncontended_acquire(self, table):
        lock = Mutex(table)
        holder = running_task("holder")
        assert lock.acquire(holder, now=0.0) is None
        assert lock.owner is holder
        assert lock.contended_acquires == 0

    def test_contended_acquire_blocks(self, table):
        lock = Mutex(table)
        holder = running_task("holder")
        waiter = running_task("waiter")
        lock.acquire(holder, now=0.0)
        assert lock.acquire(waiter, now=1.0) == BLOCKED
        waiter.mark_sleeping()
        assert lock.contended_acquires == 1

    def test_release_hands_off_fifo(self, table):
        lock = Mutex(table)
        holder = running_task("holder")
        first = running_task("first")
        second = running_task("second")
        lock.acquire(holder, now=0.0)
        lock.acquire(first, now=1.0)
        first.mark_sleeping()
        lock.acquire(second, now=2.0)
        second.mark_sleeping()
        woken = lock.release(holder, now=3.0)
        assert woken == [first]
        assert lock.owner is first  # direct hand-off, no re-acquire

    def test_release_without_waiters_frees_lock(self, table):
        lock = Mutex(table)
        holder = running_task()
        lock.acquire(holder, now=0.0)
        assert lock.release(holder, now=1.0) == []
        assert lock.owner is None

    def test_release_by_non_owner_rejected(self, table):
        lock = Mutex(table)
        holder = running_task("holder")
        imposter = running_task("imposter")
        lock.acquire(holder, now=0.0)
        with pytest.raises(KernelError, match="imposter"):
            lock.release(imposter, now=1.0)

    def test_release_unheld_rejected(self, table):
        lock = Mutex(table)
        with pytest.raises(KernelError):
            lock.release(running_task(), now=0.0)

    def test_reacquire_by_owner_rejected(self, table):
        lock = Mutex(table)
        holder = running_task()
        lock.acquire(holder, now=0.0)
        with pytest.raises(KernelError):
            lock.acquire(holder, now=1.0)

    def test_release_charges_caused_wait(self, table):
        lock = Mutex(table)
        holder = running_task("holder")
        waiter = running_task("waiter")
        lock.acquire(holder, now=0.0)
        lock.acquire(waiter, now=2.0)
        waiter.mark_sleeping()
        lock.release(holder, now=9.0)
        assert holder.caused_wait_time == pytest.approx(7.0)


class TestBarrier:
    def test_single_party_never_blocks(self, table):
        barrier = Barrier(table, parties=1)
        task = running_task()
        assert barrier.arrive(task, now=0.0) == []
        assert barrier.generations == 1

    def test_all_but_last_block(self, table):
        barrier = Barrier(table, parties=3)
        a, b, c = (running_task(n) for n in "abc")
        assert barrier.arrive(a, now=0.0) == BLOCKED
        a.mark_sleeping()
        assert barrier.arrive(b, now=1.0) == BLOCKED
        b.mark_sleeping()
        woken = barrier.arrive(c, now=5.0)
        assert woken == [a, b]

    def test_last_arriver_charged_cumulative_wait(self, table):
        barrier = Barrier(table, parties=3)
        a, b, c = (running_task(n) for n in "abc")
        barrier.arrive(a, now=0.0)
        a.mark_sleeping()
        barrier.arrive(b, now=2.0)
        b.mark_sleeping()
        barrier.arrive(c, now=10.0)
        assert c.caused_wait_time == pytest.approx(10.0 + 8.0)

    def test_barrier_is_cyclic(self, table):
        barrier = Barrier(table, parties=2)
        a, b = running_task("a"), running_task("b")
        barrier.arrive(a, now=0.0)
        a.mark_sleeping()
        barrier.arrive(b, now=1.0)
        a.mark_ready()
        a.mark_running(0, "big")
        # second generation reuses the same object
        barrier.arrive(b, now=2.0)
        b.mark_sleeping()
        woken = barrier.arrive(a, now=3.0)
        assert woken == [b]
        assert barrier.generations == 2

    def test_zero_parties_rejected(self, table):
        with pytest.raises(KernelError):
            Barrier(table, parties=0)


class TestCondVar:
    def test_wait_always_blocks(self, table):
        cv = CondVar(table)
        task = running_task()
        assert cv.wait(task, now=0.0) == BLOCKED

    def test_signal_wakes_one(self, table):
        cv = CondVar(table)
        a, b = running_task("a"), running_task("b")
        cv.wait(a, now=0.0)
        a.mark_sleeping()
        cv.wait(b, now=1.0)
        b.mark_sleeping()
        signaller = running_task("s")
        assert cv.signal(signaller, now=2.0) == [a]

    def test_broadcast_wakes_all(self, table):
        cv = CondVar(table)
        tasks = [running_task(str(i)) for i in range(3)]
        for t in tasks:
            cv.wait(t, now=0.0)
            t.mark_sleeping()
        assert cv.broadcast(running_task("s"), now=1.0) == tasks

    def test_signal_without_waiters(self, table):
        cv = CondVar(table)
        assert cv.signal(running_task(), now=0.0) == []


class TestPipe:
    def test_put_then_get(self, table):
        pipe = Pipe(table, capacity=4)
        producer = running_task("p")
        consumer = running_task("c")
        assert pipe.put(producer, "item", now=0.0) == []
        item, woken = pipe.get(consumer, now=1.0)
        assert item == "item"
        assert woken == []

    def test_get_on_empty_blocks_and_receives_delivery(self, table):
        pipe = Pipe(table, capacity=4)
        consumer = running_task("c")
        producer = running_task("p")
        assert pipe.get(consumer, now=0.0) == BLOCKED
        consumer.mark_sleeping()
        woken = pipe.put(producer, "direct", now=3.0)
        assert woken == [consumer]
        assert pipe.collect_delivery(consumer) == "direct"

    def test_collect_without_delivery_rejected(self, table):
        pipe = Pipe(table, capacity=1)
        with pytest.raises(KernelError):
            pipe.collect_delivery(running_task())

    def test_put_on_full_blocks(self, table):
        pipe = Pipe(table, capacity=1)
        producer = running_task("p")
        assert pipe.put(producer, 1, now=0.0) == []
        blocked_producer = running_task("p2")
        assert pipe.put(blocked_producer, 2, now=1.0) == BLOCKED
        blocked_producer.mark_sleeping()
        consumer = running_task("c")
        item, woken = pipe.get(consumer, now=2.0)
        assert item == 1
        assert woken == [blocked_producer]
        # the blocked producer's item entered the buffer on hand-off
        item2, _ = pipe.get(consumer, now=3.0)
        assert item2 == 2

    def test_fifo_ordering(self, table):
        pipe = Pipe(table, capacity=8)
        producer = running_task("p")
        for i in range(5):
            pipe.put(producer, i, now=0.0)
        consumer = running_task("c")
        got = [pipe.get(consumer, now=1.0)[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_validation(self, table):
        with pytest.raises(KernelError):
            Pipe(table, capacity=0)

    def test_len_tracks_buffer(self, table):
        pipe = Pipe(table, capacity=4)
        producer = running_task("p")
        pipe.put(producer, 1, now=0.0)
        pipe.put(producer, 2, now=0.0)
        assert len(pipe) == 2

    def test_put_wait_charged_to_consumer(self, table):
        pipe = Pipe(table, capacity=1)
        producer = running_task("p")
        pipe.put(producer, 1, now=0.0)
        blocked = running_task("p2")
        pipe.put(blocked, 2, now=1.0)
        blocked.mark_sleeping()
        consumer = running_task("c")
        pipe.get(consumer, now=6.0)
        assert consumer.caused_wait_time == pytest.approx(5.0)

    def test_get_wait_charged_to_producer(self, table):
        pipe = Pipe(table, capacity=2)
        consumer = running_task("c")
        pipe.get(consumer, now=0.0)
        consumer.mark_sleeping()
        producer = running_task("p")
        pipe.put(producer, 1, now=4.0)
        assert producer.caused_wait_time == pytest.approx(4.0)
