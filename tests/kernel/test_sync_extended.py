"""Semaphore and readers/writer lock tests (unit + machine-level)."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernel.futex import FutexTable
from repro.kernel.sync import BLOCKED, RWLock, Semaphore
from repro.kernel.task import Task
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import (
    Compute,
    ReadAcquire,
    ReadRelease,
    SemAcquire,
    SemRelease,
    WriteAcquire,
    WriteRelease,
)
from tests.conftest import NEUTRAL_PROFILE, make_machine, make_simple_task

FREE = dict(context_switch_cost=0.0, migration_cost=0.0)


def running_task(name="t"):
    task = make_simple_task(name=name)
    task.mark_ready()
    task.mark_running(0, "big")
    return task


@pytest.fixture
def table():
    return FutexTable()


class TestSemaphoreUnit:
    def test_permits_consumed_and_returned(self, table):
        sem = Semaphore(table, permits=2)
        a, b = running_task("a"), running_task("b")
        assert sem.acquire(a, 0.0) is None
        assert sem.acquire(b, 0.0) is None
        assert sem.permits == 0
        assert sem.release(a, 1.0) == []
        assert sem.permits == 1

    def test_exhausted_blocks(self, table):
        sem = Semaphore(table, permits=1)
        a, b = running_task("a"), running_task("b")
        sem.acquire(a, 0.0)
        assert sem.acquire(b, 1.0) == BLOCKED
        b.mark_sleeping()
        assert sem.contended_acquires == 1

    def test_release_hands_permit_to_waiter(self, table):
        sem = Semaphore(table, permits=1)
        a, b = running_task("a"), running_task("b")
        sem.acquire(a, 0.0)
        sem.acquire(b, 1.0)
        b.mark_sleeping()
        woken = sem.release(a, 5.0)
        assert woken == [b]
        assert sem.permits == 0  # handed off, never banked
        assert a.caused_wait_time == pytest.approx(4.0)

    def test_negative_permits_rejected(self, table):
        with pytest.raises(KernelError):
            Semaphore(table, permits=-1)

    def test_zero_permit_semaphore_as_signal(self, table):
        sem = Semaphore(table, permits=0)
        waiter = running_task("w")
        assert sem.acquire(waiter, 0.0) == BLOCKED
        waiter.mark_sleeping()
        signaller = running_task("s")
        assert sem.release(signaller, 2.0) == [waiter]


class TestRWLockUnit:
    def test_readers_share(self, table):
        rw = RWLock(table)
        a, b = running_task("a"), running_task("b")
        assert rw.acquire_read(a, 0.0) is None
        assert rw.acquire_read(b, 0.0) is None
        assert len(rw.readers) == 2

    def test_writer_excludes_readers(self, table):
        rw = RWLock(table)
        writer, reader = running_task("w"), running_task("r")
        assert rw.acquire_write(writer, 0.0) is None
        assert rw.acquire_read(reader, 1.0) == BLOCKED
        reader.mark_sleeping()

    def test_readers_block_writer(self, table):
        rw = RWLock(table)
        reader, writer = running_task("r"), running_task("w")
        rw.acquire_read(reader, 0.0)
        assert rw.acquire_write(writer, 1.0) == BLOCKED
        writer.mark_sleeping()

    def test_last_reader_admits_writer(self, table):
        rw = RWLock(table)
        r1, r2, writer = running_task("r1"), running_task("r2"), running_task("w")
        rw.acquire_read(r1, 0.0)
        rw.acquire_read(r2, 0.0)
        rw.acquire_write(writer, 1.0)
        writer.mark_sleeping()
        assert rw.release_read(r1, 2.0) == []
        woken = rw.release_read(r2, 3.0)
        assert woken == [writer]
        assert rw.writer is writer

    def test_writer_preference_blocks_new_readers(self, table):
        rw = RWLock(table)
        r1, writer, r2 = running_task("r1"), running_task("w"), running_task("r2")
        rw.acquire_read(r1, 0.0)
        rw.acquire_write(writer, 1.0)
        writer.mark_sleeping()
        # A new reader must queue behind the waiting writer.
        assert rw.acquire_read(r2, 2.0) == BLOCKED
        r2.mark_sleeping()

    def test_write_release_admits_all_readers(self, table):
        rw = RWLock(table)
        writer, r1, r2 = running_task("w"), running_task("r1"), running_task("r2")
        rw.acquire_write(writer, 0.0)
        rw.acquire_read(r1, 1.0)
        r1.mark_sleeping()
        rw.acquire_read(r2, 1.0)
        r2.mark_sleeping()
        woken = rw.release_write(writer, 5.0)
        assert set(woken) == {r1, r2}
        assert rw.readers == {r1.tid, r2.tid}

    def test_double_acquire_rejected(self, table):
        rw = RWLock(table)
        task = running_task()
        rw.acquire_read(task, 0.0)
        with pytest.raises(KernelError):
            rw.acquire_read(task, 1.0)

    def test_release_without_hold_rejected(self, table):
        rw = RWLock(table)
        with pytest.raises(KernelError):
            rw.release_read(running_task(), 0.0)
        with pytest.raises(KernelError):
            rw.release_write(running_task(), 0.0)


class TestMachineIntegration:
    def test_semaphore_limits_concurrency(self):
        """A 1-permit semaphore serialises; 2 cores don't help."""
        machine = make_machine(2, 0, **FREE)
        sem = Semaphore(machine.futexes, permits=1)

        def worker():
            yield SemAcquire(sem)
            yield Compute(5.0)
            yield SemRelease(sem)

        for i in range(2):
            machine.add_task(Task(f"w{i}", i, worker(), NEUTRAL_PROFILE))
        result = machine.run()
        assert result.makespan == pytest.approx(10.0)

    def test_two_permit_semaphore_allows_parallelism(self):
        machine = make_machine(2, 0, **FREE)
        sem = Semaphore(machine.futexes, permits=2)

        def worker():
            yield SemAcquire(sem)
            yield Compute(5.0)
            yield SemRelease(sem)

        for i in range(2):
            machine.add_task(Task(f"w{i}", i, worker(), NEUTRAL_PROFILE))
        result = machine.run()
        assert result.makespan == pytest.approx(5.0)

    def test_rwlock_readers_run_concurrently(self):
        machine = make_machine(2, 0, **FREE)
        rw = RWLock(machine.futexes)

        def reader():
            yield ReadAcquire(rw)
            yield Compute(5.0)
            yield ReadRelease(rw)

        for i in range(2):
            machine.add_task(Task(f"r{i}", i, reader(), NEUTRAL_PROFILE))
        result = machine.run()
        assert result.makespan == pytest.approx(5.0)

    def test_rwlock_writer_serialises_with_readers(self):
        from repro.schedulers.cfs import CFSScheduler

        machine = Machine(
            make_topology(2, 0),
            CFSScheduler(),
            MachineConfig(seed=0, **FREE),
        )
        rw = RWLock(machine.futexes)

        def writer():
            yield WriteAcquire(rw)
            yield Compute(4.0)
            yield WriteRelease(rw)

        def reader():
            yield Compute(0.5)  # arrive after the writer grabbed the lock
            yield ReadAcquire(rw)
            yield Compute(2.0)
            yield ReadRelease(rw)

        machine.add_task(Task("writer", 0, writer(), NEUTRAL_PROFILE))
        machine.add_task(Task("reader", 1, reader(), NEUTRAL_PROFILE))
        result = machine.run()
        # Reader waits for the writer: 4 (write) + 2 (read) sequentially.
        assert result.makespan == pytest.approx(6.0, abs=0.2)
        reader_task = next(t for t in machine.tasks if t.name == "reader")
        assert reader_task.own_wait_time > 3.0
