"""Futex wait/wake and caused-wait (criticality) accounting tests."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.kernel.futex import FutexTable, new_futex_id
from tests.conftest import make_simple_task


def sleeping_task(name="t"):
    task = make_simple_task(name=name)
    task.mark_ready()
    task.mark_running(0, "big")
    return task


def park(table, task, futex_id, now):
    """Wait + transition to SLEEPING, as the machine does."""
    table.wait(task, futex_id, now)
    task.mark_sleeping()


class TestWaitWake:
    def test_new_futex_ids_unique(self):
        assert new_futex_id() != new_futex_id()

    def test_wait_records_timestamp(self):
        table = FutexTable()
        task = sleeping_task()
        park(table, task, 7, now=3.0)
        assert task.wait_started_at == 3.0
        assert table.waiter_count(7) == 1
        assert table.total_waits == 1

    def test_double_wait_rejected(self):
        table = FutexTable()
        task = sleeping_task()
        park(table, task, 7, now=3.0)
        with pytest.raises(KernelError):
            table.wait(task, 8, now=4.0)

    def test_wake_charges_waker_with_wait_time(self):
        table = FutexTable()
        waker = sleeping_task("waker")
        waiter = sleeping_task("waiter")
        park(table, waiter, 7, now=2.0)
        woken = table.wake(waker, 7, now=10.0)
        assert woken == [waiter]
        assert waker.caused_wait_time == pytest.approx(8.0)
        assert waker.caused_wait_window == pytest.approx(8.0)
        assert waiter.own_wait_time == pytest.approx(8.0)
        assert waiter.wait_started_at is None

    def test_wake_is_fifo(self):
        table = FutexTable()
        first = sleeping_task("first")
        second = sleeping_task("second")
        park(table, first, 7, now=0.0)
        park(table, second, 7, now=1.0)
        woken = table.wake(None, 7, now=5.0, count=1)
        assert woken == [first]
        assert table.waiters(7) == [second]

    def test_wake_count_limits(self):
        table = FutexTable()
        tasks = [sleeping_task(f"t{i}") for i in range(4)]
        for i, task in enumerate(tasks):
            park(table, task, 7, now=float(i))
        woken = table.wake(None, 7, now=10.0, count=2)
        assert woken == tasks[:2]
        assert table.waiter_count(7) == 2

    def test_wake_all(self):
        table = FutexTable()
        tasks = [sleeping_task(f"t{i}") for i in range(3)]
        for task in tasks:
            park(table, task, 7, now=0.0)
        waker = sleeping_task("waker")
        woken = table.wake_all(waker, 7, now=4.0)
        assert woken == tasks
        assert waker.caused_wait_time == pytest.approx(12.0)
        assert not table.any_waiters()

    def test_wake_empty_futex_returns_nothing(self):
        table = FutexTable()
        assert table.wake(None, 99, now=1.0) == []

    def test_wake_accumulates_across_episodes(self):
        table = FutexTable()
        waker = sleeping_task("waker")
        waiter = sleeping_task("waiter")
        park(table, waiter, 7, now=0.0)
        table.wake(waker, 7, now=3.0)
        waiter.mark_ready()
        waiter.mark_running(0, "big")
        park(table, waiter, 7, now=5.0)
        table.wake(waker, 7, now=6.0)
        assert waker.caused_wait_time == pytest.approx(4.0)

    def test_wake_requires_sleeping_state(self):
        table = FutexTable()
        task = sleeping_task()
        table.wait(task, 7, now=0.0)  # forgot to mark_sleeping
        with pytest.raises(KernelError):
            table.wake(None, 7, now=1.0)

    def test_window_resets_independently_of_total(self):
        table = FutexTable()
        waker = sleeping_task("waker")
        waiter = sleeping_task("waiter")
        park(table, waiter, 7, now=0.0)
        table.wake(waker, 7, now=5.0)
        waker.caused_wait_window = 0.0  # labeler reads and resets
        assert waker.caused_wait_time == pytest.approx(5.0)

    def test_counters_record_quiesce_on_wake(self):
        from repro.sim.counters import PerformanceCounters
        import numpy as np
        from tests.conftest import NEUTRAL_PROFILE

        table = FutexTable()
        waiter = sleeping_task("waiter")
        waiter.counters = PerformanceCounters(
            profile=NEUTRAL_PROFILE, rng=np.random.default_rng(0)
        )
        park(table, waiter, 7, now=0.0)
        table.wake(None, 7, now=4.0)
        assert waiter.counters.totals["quiesceCycles"] > 0
