"""Parity and cache-behaviour tests for the process-pool sweep executor.

The determinism contract under test: for a *pure* speedup estimator the
sweep result is a function of (workload, topology, scheduler, seed,
core-order) only -- never of worker count, completion order, or whether a
point came from the persistent cache.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    BoundedCache,
    ExperimentContext,
    evaluate_mix,
    sweep,
)
from repro.model.speedup import OracleSpeedupModel
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import parallel_sweep

#: Small but structurally interesting subset: 2 mixes x 2 configs x 3
#: schedulers = 12 evaluation points, 24 simulations.
MIX_SUBSET = ["Sync-1", "NSync-1"]
CONFIG_SUBSET = ("2B2S", "4B2S")
WORK_SCALE = 0.04


def pure_ctx(**overrides) -> ExperimentContext:
    defaults = dict(
        seed=11,
        work_scale=WORK_SCALE,
        estimator=OracleSpeedupModel(noise_std=0.0, seed=11),
    )
    defaults.update(overrides)
    return ExperimentContext(**defaults)


def run_sweep(ctx: ExperimentContext, **kwargs):
    return sweep(ctx, MIX_SUBSET, configs=CONFIG_SUBSET, **kwargs)


class TestParallelSerialParity:
    def test_jobs1_pool_matches_serial(self):
        serial = run_sweep(pure_ctx())
        pooled = parallel_sweep(
            pure_ctx(), MIX_SUBSET, configs=CONFIG_SUBSET, jobs=1
        )
        assert pooled == serial

    def test_jobs4_pool_matches_serial(self):
        serial = run_sweep(pure_ctx())
        pooled = parallel_sweep(
            pure_ctx(), MIX_SUBSET, configs=CONFIG_SUBSET, jobs=4
        )
        assert pooled == serial

    def test_sweep_jobs_argument_routes_to_pool(self):
        serial = run_sweep(pure_ctx())
        parallel = run_sweep(pure_ctx(), jobs=2)
        assert parallel == serial

    def test_ctx_jobs_field_routes_to_pool(self):
        serial = run_sweep(pure_ctx())
        ctx = pure_ctx(jobs=2)
        assert run_sweep(ctx) == serial
        assert ctx.obs_metrics.gauge("parallel.jobs").value == 2.0

    def test_result_order_is_point_order_not_completion_order(self):
        results = run_sweep(pure_ctx(), jobs=4)
        expected = [
            (mix, config, scheduler)
            for mix in MIX_SUBSET
            for config in CONFIG_SUBSET
            for scheduler in ("linux", "wash", "colab")
        ]
        assert [
            (m.mix_index, m.config, m.scheduler) for m in results
        ] == expected

    def test_sanitized_parallel_matches_plain(self):
        plain = run_sweep(pure_ctx())
        checked = run_sweep(pure_ctx(), jobs=2, sanitize=True)
        assert checked == plain

    def test_worker_utilisation_metrics_recorded(self):
        ctx = pure_ctx(jobs=2)
        run_sweep(ctx)
        snapshot = ctx.obs_metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters["parallel.points_executed"] == 12.0
        assert gauges["parallel.workers_used"] >= 1.0
        assert gauges["parallel.worker.0.busy_s"] > 0.0
        assert gauges["parallel.worker.0.points"] >= 1.0


def telemetry_for(points_count: int):
    """A DistTelemetry with silent progress, for telemetry-enabled runs."""
    from repro.obs.dist import DistTelemetry, SweepProgress

    return DistTelemetry(
        progress=SweepProgress(points_count, enabled=False)
    )


class TestSweepTelemetry:
    """Telemetry is observational: identical results, richer outputs."""

    def test_telemetry_enabled_jobs2_matches_plain_serial(self):
        plain = run_sweep(pure_ctx())
        telemetry = telemetry_for(12)
        observed = run_sweep(pure_ctx(), jobs=2, telemetry=telemetry)
        assert observed == plain
        assert len(telemetry.bundles) == 12
        assert telemetry.report()["points_executed"] == 12

    def test_telemetry_enabled_jobs4_matches_plain_serial(self):
        plain = run_sweep(pure_ctx())
        telemetry = telemetry_for(12)
        assert run_sweep(pure_ctx(), jobs=4, telemetry=telemetry) == plain

    def test_jobs1_and_jobs4_timelines_agree_on_shape(self):
        from repro.obs.dist import timeline_shape

        one = telemetry_for(12)
        run_sweep(pure_ctx(), jobs=1, telemetry=one)
        four = telemetry_for(12)
        run_sweep(pure_ctx(), jobs=4, telemetry=four)
        assert timeline_shape(one.merged_timeline()) == timeline_shape(
            four.merged_timeline()
        )

    def test_telemetry_reads_cache_entries_written_without_it(self, tmp_path):
        # Bundles stay out of the fingerprint: a plain sweep's persistent
        # cache fully serves a telemetry-enabled sweep, and vice versa.
        plain = run_sweep(pure_ctx(cache_dir=tmp_path))
        telemetry = telemetry_for(12)
        warm_ctx = pure_ctx(cache_dir=tmp_path)
        warm = run_sweep(warm_ctx, jobs=2, telemetry=telemetry)
        assert warm == plain
        report = telemetry.report()
        assert report["points_from_cache"] == 12
        assert report["points_executed"] == 0
        assert report["cache_hit_ratio"] == 1.0

    def test_bundles_carry_worker_counters_and_spans(self):
        telemetry = telemetry_for(12)
        run_sweep(pure_ctx(), jobs=2, telemetry=telemetry)
        bundles = telemetry.bundles_in_point_order()
        assert len(bundles) == 12
        for bundle in bundles:
            assert bundle.spans, "every executed point records its run span"
            assert bundle.counters.get("sim.events_processed", 0) > 0
        report = telemetry.report()
        assert report["counters"]["sim.events_processed"] > 0
        assert report["workers"], "at least one worker track"

    def test_sweep_aggregates_into_context_registry(self):
        ctx = pure_ctx()
        telemetry = telemetry_for(12)
        run_sweep(ctx, jobs=2, telemetry=telemetry)
        snapshot = ctx.obs_metrics.snapshot()
        assert snapshot["histograms"]["sweep.point_wall_s"]["count"] == 12
        assert "sweep.cache_hit_ratio" in snapshot["gauges"]

    def test_merged_timeline_json_roundtrips(self):
        import json

        telemetry = telemetry_for(12)
        run_sweep(pure_ctx(), jobs=2, telemetry=telemetry)
        document = json.loads(json.dumps(telemetry.merged_timeline()))
        metadata = [
            record for record in document["traceEvents"]
            if record["ph"] == "M" and record["name"] == "process_name"
        ]
        assert any(
            m["args"]["name"] == "sweep parent [orchestration]"
            for m in metadata
        )
        assert document["otherData"]["workers"] >= 1


class TestPersistentCacheParity:
    def test_cold_vs_warm_is_bit_identical(self, tmp_path):
        cold_ctx = pure_ctx(cache_dir=tmp_path)
        cold = run_sweep(cold_ctx)
        assert len(cold_ctx.result_cache) == 12

        warm_ctx = pure_ctx(cache_dir=tmp_path)
        warm = run_sweep(warm_ctx)
        assert warm == cold
        hits = warm_ctx.obs_metrics.counter("cache.persistent.hits").value
        assert hits == 12.0

    def test_warm_cache_answers_parallel_sweep_without_pool(self, tmp_path):
        run_sweep(pure_ctx(cache_dir=tmp_path))

        def refuse_pool(*_args, **_kwargs):
            raise AssertionError("warm cache must not spawn a pool")

        warm_ctx = pure_ctx(cache_dir=tmp_path, executor_factory=refuse_pool)
        warm = run_sweep(warm_ctx, jobs=4)
        assert warm == run_sweep(pure_ctx())
        from_cache = warm_ctx.obs_metrics.counter(
            "parallel.points_from_cache"
        ).value
        assert from_cache == 12.0

    def test_parallel_sweep_fills_persistent_cache(self, tmp_path):
        ctx = pure_ctx(cache_dir=tmp_path)
        run_sweep(ctx, jobs=2)
        assert len(ctx.result_cache) == 12
        warm = run_sweep(pure_ctx(cache_dir=tmp_path))
        assert warm == run_sweep(pure_ctx())

    def test_impure_estimator_never_persists(self, tmp_path):
        ctx = pure_ctx(
            estimator=OracleSpeedupModel(noise_std=0.1, seed=11),
            cache_dir=tmp_path,
        )
        evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        assert len(ctx.result_cache) == 0

    def test_sanitized_runs_bypass_persistent_cache(self, tmp_path):
        ctx = pure_ctx(cache_dir=tmp_path)
        evaluate_mix(ctx, "Sync-1", "2B2S", "colab", sanitize=True)
        assert len(ctx.result_cache) == 0

    def test_seed_change_misses_cache(self, tmp_path):
        ctx = pure_ctx(cache_dir=tmp_path)
        evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        other = pure_ctx(
            seed=12,
            estimator=OracleSpeedupModel(noise_std=0.0, seed=12),
            cache_dir=tmp_path,
        )
        evaluate_mix(other, "Sync-1", "2B2S", "colab")
        assert other.obs_metrics.counter("cache.persistent.hits").value == 0.0
        assert len(ctx.result_cache) == 2


class TestBoundedCache:
    def make(self, maxsize=3):
        registry = MetricsRegistry(enabled=True)
        return (
            BoundedCache(
                maxsize,
                registry.counter("hits"),
                registry.counter("misses"),
                registry.counter("evictions"),
            ),
            registry,
        )

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ExperimentError):
            self.make(maxsize=0)

    def test_hit_miss_counters(self):
        cache, registry = self.make()
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert registry.counter("hits").value == 1.0
        assert registry.counter("misses").value == 1.0

    def test_lru_eviction_order(self):
        cache, registry = self.make(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert registry.counter("evictions").value == 1.0

    def test_put_refreshes_existing_key(self):
        cache, _ = self.make(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_context_cache_counters_wired(self):
        ctx = pure_ctx()
        evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        snapshot = ctx.obs_metrics.snapshot()["counters"]
        assert snapshot["ctx.metrics_cache.hits"] == 1.0
        assert snapshot["ctx.run_cache.misses"] == 2.0  # both core orders


class TestContextFields:
    def test_defaults_are_serial_and_uncached(self):
        ctx = ExperimentContext()
        assert ctx.jobs == 1
        assert ctx.result_cache is None

    def test_run_cache_still_deduplicates_runs(self):
        ctx = pure_ctx()
        a = evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        b = evaluate_mix(ctx, "Sync-1", "2B2S", "colab")
        assert a is b  # in-process metrics cache returns the same object

    def test_dataclass_replace_keeps_working(self):
        ctx = pure_ctx()
        clone = dataclasses.replace(ctx, seed=99)
        assert clone.seed == 99
        assert clone._metrics_cache is not ctx._metrics_cache


class TestLedgerRecording:
    def ledger(self, tmp_path):
        from repro.obs.ledger import Ledger

        return Ledger(tmp_path / "ledger.db")

    def test_parallel_sweep_records_every_point(self, tmp_path):
        with self.ledger(tmp_path) as ledger:
            ctx = pure_ctx(ledger=ledger)
            results = run_sweep(ctx, jobs=2)
            rows = ledger.list_runs(limit=100)
            assert len(rows) == len(results)
            recorded = {
                (row["mix"], row["config"], row["scheduler"])
                for row in rows
            }
            assert recorded == {
                (m.mix_index, m.config, m.scheduler) for m in results
            }
            assert all(row["cache_hit"] is False for row in rows)

    def test_ledger_does_not_change_sweep_results(self, tmp_path):
        plain = run_sweep(pure_ctx(), jobs=2)
        with self.ledger(tmp_path) as ledger:
            recorded = run_sweep(pure_ctx(ledger=ledger), jobs=2)
        assert recorded == plain

    def test_warm_cache_points_marked_as_hits(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(pure_ctx(cache_dir=cache_dir), jobs=2)  # warm the cache
        with self.ledger(tmp_path) as ledger:
            warm_ctx = pure_ctx(cache_dir=cache_dir, ledger=ledger)
            results = run_sweep(warm_ctx, jobs=2)
            rows = ledger.list_runs(limit=100)
            assert len(rows) == len(results)
            assert all(row["cache_hit"] is True for row in rows)

    def test_ledger_handle_excluded_from_fingerprints(self):
        from repro.parallel.fingerprint import TELEMETRY_EXCLUDED_FIELDS

        assert "ledger" in TELEMETRY_EXCLUDED_FIELDS
