"""Unit tests: cache-key fingerprints and the on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import ModelError
from repro.experiments.runner import ExperimentContext, MixMetrics
from repro.model.speedup import (
    LearnedSpeedupModel,
    OracleSpeedupModel,
    estimator_from_spec,
    estimator_to_spec,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.parallel.fingerprint import (
    estimator_fingerprint,
    point_fingerprint,
    point_key_material,
    source_tree_hash,
)


def pure_ctx(**overrides) -> ExperimentContext:
    defaults = dict(
        seed=7,
        work_scale=0.05,
        estimator=OracleSpeedupModel(noise_std=0.0, seed=7),
    )
    defaults.update(overrides)
    return ExperimentContext(**defaults)


def sample_metrics() -> MixMetrics:
    return MixMetrics(
        mix_index="Sync-1",
        config="2B2S",
        scheduler="colab",
        h_antt=1.2345678901234567,
        h_stp=1.7654321098765432,
        makespan=123.456,
        turnarounds={"fmm": 10.125, "water_nsquared": 8.25},
    )


class TestEstimatorFingerprint:
    def test_pure_oracle_has_stable_id(self):
        ctx = pure_ctx()
        assert estimator_fingerprint(ctx) == "oracle:pure:seed=7"

    def test_noisy_oracle_uncacheable(self):
        ctx = pure_ctx(estimator=OracleSpeedupModel(noise_std=0.1, seed=7))
        assert estimator_fingerprint(ctx) is None

    def test_default_noisy_oracle_uncacheable(self):
        ctx = pure_ctx(estimator=None, use_learned_model=False)
        assert estimator_fingerprint(ctx) is None

    def test_lazy_learned_model_symbolic(self):
        ctx = pure_ctx(estimator=None, use_learned_model=True)
        assert estimator_fingerprint(ctx) == "learned:default"

    def test_explicit_learned_model_hashes_coefficients(self):
        from repro.model.training import default_speedup_model

        model = default_speedup_model()
        ctx = pure_ctx(estimator=model)
        fingerprint = estimator_fingerprint(ctx)
        assert fingerprint is not None and fingerprint.startswith("learned:")
        # Same coefficients -> same id; the id is content-addressed.
        clone = LearnedSpeedupModel.from_spec(model.to_spec())
        assert estimator_fingerprint(pure_ctx(estimator=clone)) == fingerprint


class TestEstimatorSpecRoundTrip:
    def test_oracle_round_trip(self):
        spec = estimator_to_spec(OracleSpeedupModel(noise_std=0.0, seed=3))
        rebuilt = estimator_from_spec(spec)
        assert isinstance(rebuilt, OracleSpeedupModel)
        assert rebuilt.is_pure

    def test_learned_round_trip_is_exact(self):
        from repro.model.training import default_speedup_model

        model = default_speedup_model()
        rebuilt = estimator_from_spec(estimator_to_spec(model))
        assert isinstance(rebuilt, LearnedSpeedupModel)
        assert rebuilt.to_spec() == model.to_spec()

    def test_unknown_spec_rejected(self):
        with pytest.raises(ModelError):
            estimator_from_spec({"kind": "mystery"})


class TestPointFingerprint:
    def test_material_covers_source_tree(self):
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        assert material is not None
        assert material["source_tree"] == source_tree_hash()
        assert material["core_orders"] == ["big_first", "little_first"]

    def test_uncacheable_estimator_yields_none(self):
        ctx = pure_ctx(estimator=OracleSpeedupModel(noise_std=0.1, seed=7))
        assert point_key_material(ctx, "Sync-1", "2B2S", "colab") is None


class TestSourceTreeHash:
    def seed_tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "top.py").write_text("y = 2\n")
        return tmp_path

    def test_pycache_and_pyc_do_not_churn_the_hash(self, tmp_path):
        tree = self.seed_tree(tmp_path)
        before = source_tree_hash(root=tree)
        cache = tree / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-312.pyc").write_bytes(b"\x00bytecode")
        # Some tools drop real .py files inside __pycache__ too.
        (cache / "mod.cpython-312.py").write_text("compiled = True\n")
        assert source_tree_hash(root=tree) == before

    def test_hidden_editor_droppings_are_ignored(self, tmp_path):
        tree = self.seed_tree(tmp_path)
        before = source_tree_hash(root=tree)
        (tree / ".#top.py").write_text("emacs lock\n")
        (tree / "pkg" / ".mod.py").write_text("vim artifact\n")
        assert source_tree_hash(root=tree) == before

    def test_real_source_changes_still_invalidate(self, tmp_path):
        tree = self.seed_tree(tmp_path)
        before = source_tree_hash(root=tree)
        (tree / "pkg" / "mod.py").write_text("x = 2\n")
        assert source_tree_hash(root=tree) != before

    def test_default_root_is_cached_and_stable(self):
        assert source_tree_hash() == source_tree_hash()

    def test_fingerprint_varies_with_every_key_field(self):
        base = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        seen = {point_fingerprint(base)}
        for override in (
            pure_ctx(seed=8),
            pure_ctx(work_scale=0.06),
            pure_ctx(estimator=OracleSpeedupModel(noise_std=0.0, seed=9)),
        ):
            material = point_key_material(override, "Sync-1", "2B2S", "colab")
            fingerprint = point_fingerprint(material)
            assert fingerprint not in seen
            seen.add(fingerprint)
        for point in (
            ("Sync-2", "2B2S", "colab"),
            ("Sync-1", "4B4S", "colab"),
            ("Sync-1", "2B2S", "linux"),
        ):
            material = point_key_material(pure_ctx(), *point)
            fingerprint = point_fingerprint(material)
            assert fingerprint not in seen
            seen.add(fingerprint)

    def test_fingerprint_stable_across_calls(self):
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        again = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        assert point_fingerprint(material) == point_fingerprint(again)


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_falls_back_to_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        path = default_cache_dir()
        assert path.name == "repro"
        assert path.parent.name == ".cache"


class TestResultCache:
    def test_round_trip_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = sample_metrics()
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        fingerprint = point_fingerprint(material)
        cache.store(fingerprint, metrics, material)
        loaded = cache.load(fingerprint)
        assert loaded == metrics  # float64 repr round-trips exactly

    def test_turnaround_order_survives_round_trip(self, tmp_path):
        # Reports render programs in mix order; dict __eq__ would not
        # catch a cache that alphabetises keys on the way to disk.
        cache = ResultCache(tmp_path)
        metrics = sample_metrics()
        metrics.turnarounds = {"water_nsquared": 8.25, "fmm": 10.125}
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        fingerprint = point_fingerprint(material)
        cache.store(fingerprint, metrics, material)
        loaded = cache.load(fingerprint)
        assert list(loaded.turnarounds) == ["water_nsquared", "fmm"]

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = sample_metrics()
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        fingerprint = point_fingerprint(material)
        cache.store(fingerprint, metrics, material)
        path = cache._path_for(fingerprint)
        path.write_text("{ torn write")
        assert cache.load(fingerprint) is None

    def test_entry_is_auditable_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        fingerprint = point_fingerprint(material)
        cache.store(fingerprint, sample_metrics(), material)
        payload = json.loads(cache._path_for(fingerprint).read_text())
        assert payload["key"] == material
        assert payload["point"]["scheduler"] == "colab"

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        cache.store(point_fingerprint(material), sample_metrics(), material)
        assert len(cache) == 1

    def test_metrics_counters_published(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        cache = ResultCache(tmp_path, metrics=registry)
        material = point_key_material(pure_ctx(), "Sync-1", "2B2S", "colab")
        fingerprint = point_fingerprint(material)
        cache.load(fingerprint)
        cache.store(fingerprint, sample_metrics(), material)
        cache.load(fingerprint)
        assert registry.counter("cache.persistent.misses").value == 1.0
        assert registry.counter("cache.persistent.stores").value == 1.0
        assert registry.counter("cache.persistent.hits").value == 1.0
