"""Isolated big-only baseline cache tests."""

from __future__ import annotations

import pytest

from repro.metrics.baselines import BaselineCache
from repro.workloads.mixes import MIXES


@pytest.fixture(scope="module")
def cache():
    return BaselineCache(seed=3, work_scale=0.05)


class TestBaselineCache:
    def test_positive_turnaround(self, cache):
        value = cache.isolated_turnaround("radix", 2, 4)
        assert value > 0

    def test_memoised(self, cache, monkeypatch):
        cache.isolated_turnaround("fft", 2, 4)
        calls = []

        def boom(*args, **kwargs):
            calls.append(args)
            raise AssertionError("re-measured a cached baseline")

        monkeypatch.setattr(cache, "_measure", boom)
        cache.isolated_turnaround("fft", 2, 4)
        assert not calls

    def test_distinct_keys_distinct_entries(self, cache):
        two = cache.isolated_turnaround("lu_cb", 2, 4)
        four = cache.isolated_turnaround("lu_cb", 4, 4)
        assert two != four

    def test_more_cores_not_slower(self, cache):
        narrow = cache.isolated_turnaround("blackscholes", 4, 2)
        wide = cache.isolated_turnaround("blackscholes", 4, 8)
        assert wide <= narrow * 1.05

    def test_for_mix_returns_all_labels(self, cache):
        baselines = cache.for_mix(MIXES["Sync-4"], n_cores=4)
        assert set(baselines) == {"dedup", "ferret", "fmm", "water_nsquared"}
        assert all(v > 0 for v in baselines.values())

    def test_work_scale_shrinks_baseline(self):
        big = BaselineCache(seed=3, work_scale=0.1)
        small = BaselineCache(seed=3, work_scale=0.05)
        assert small.isolated_turnaround("radix", 2, 4) < big.isolated_turnaround(
            "radix", 2, 4
        )
