"""H_NTT / H_ANTT / H_STP metric tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics.turnaround import geomean, h_antt, h_ntt, h_stp, normalize_to

positive = st.floats(0.01, 1e6)


class TestHNTT:
    def test_definition(self):
        assert h_ntt(200.0, 100.0) == 2.0

    def test_perfect_scheduling_is_one(self):
        assert h_ntt(100.0, 100.0) == 1.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            h_ntt(0.0, 1.0)
        with pytest.raises(ExperimentError):
            h_ntt(1.0, -1.0)
        with pytest.raises(ExperimentError):
            h_ntt(float("nan"), 1.0)


class TestHANTT:
    def test_average_of_slowdowns(self):
        turnarounds = {"a": 200.0, "b": 100.0}
        baselines = {"a": 100.0, "b": 100.0}
        assert h_antt(turnarounds, baselines) == pytest.approx(1.5)

    def test_key_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            h_antt({"a": 1.0}, {"b": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            h_antt({}, {})

    @given(st.dictionaries(st.text(min_size=1, max_size=4), positive,
                           min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_isolated_runs_give_exactly_one(self, turnarounds):
        assert h_antt(turnarounds, dict(turnarounds)) == pytest.approx(1.0)


class TestHSTP:
    def test_sum_of_throughputs(self):
        turnarounds = {"a": 200.0, "b": 100.0}
        baselines = {"a": 100.0, "b": 100.0}
        assert h_stp(turnarounds, baselines) == pytest.approx(1.5)

    def test_n_apps_at_baseline_speed(self):
        apps = {f"p{i}": 100.0 for i in range(4)}
        assert h_stp(apps, dict(apps)) == pytest.approx(4.0)

    def test_key_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            h_stp({"a": 1.0}, {})

    @given(
        st.dictionaries(st.text(min_size=1, max_size=4), positive,
                        min_size=1, max_size=6),
        st.floats(1.1, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_slowdown_lowers_stp_raises_antt(self, baselines, factor):
        slowed = {k: v * factor for k, v in baselines.items()}
        assert h_stp(slowed, baselines) < h_stp(baselines, baselines)
        assert h_antt(slowed, baselines) > h_antt(baselines, baselines)


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([3.5]) == 3.5

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError):
            geomean([1.0, 0.0])

    @given(st.lists(positive, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_min_and_max(self, values):
        result = geomean(values)
        tolerance = 1e-9 * max(1.0, max(values))
        assert min(values) - tolerance <= result <= max(values) + tolerance

    @given(st.lists(positive, min_size=1, max_size=20), st.floats(0.1, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_equivariance(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


class TestNormalize:
    def test_reference_becomes_one(self):
        values = {"linux": 2.0, "wash": 1.8, "colab": 1.6}
        normalized = normalize_to(values, "linux")
        assert normalized["linux"] == 1.0
        assert normalized["colab"] == pytest.approx(0.8)

    def test_missing_reference_rejected(self):
        with pytest.raises(ExperimentError):
            normalize_to({"a": 1.0}, "b")

    def test_zero_reference_rejected(self):
        with pytest.raises(ExperimentError):
            normalize_to({"a": 0.0}, "a")
