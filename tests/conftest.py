"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel.task import Task, reset_tid_counter
from repro.sim.counters import MicroArchProfile
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import Compute


@pytest.fixture(autouse=True)
def _fresh_tids():
    """Keep task ids deterministic within each test."""
    reset_tid_counter()
    yield


#: A neutral latent profile (speedup ~= 1.75) used where the exact value
#: does not matter.
NEUTRAL_PROFILE = MicroArchProfile(
    ilp=0.5, branchiness=0.4, store_pressure=0.3,
    mem_bound=0.3, frontend_stall=0.2, quiesce=0.2,
)

#: A strongly core-sensitive profile (speedup near the ceiling).
FAST_PROFILE = MicroArchProfile(
    ilp=0.95, branchiness=0.5, store_pressure=0.7,
    mem_bound=0.02, frontend_stall=0.05, quiesce=0.1,
)

#: A core-insensitive (memory-bound) profile (speedup near 1.0).
SLOW_PROFILE = MicroArchProfile(
    ilp=0.05, branchiness=0.2, store_pressure=0.05,
    mem_bound=0.95, frontend_stall=0.6, quiesce=0.2,
)


def compute_only(work: float, speedup: float | None = None, chunks: int = 1):
    """Generator emitting ``chunks`` equal compute segments."""
    for _ in range(chunks):
        yield Compute(work / chunks, speedup=speedup)


def make_simple_task(
    name: str = "t",
    work: float = 10.0,
    app_id: int = 0,
    profile: MicroArchProfile = NEUTRAL_PROFILE,
    speedup: float | None = None,
    chunks: int = 1,
) -> Task:
    """A task that just computes ``work`` and exits."""
    return Task(
        name=name,
        app_id=app_id,
        actions=compute_only(work, speedup, chunks),
        profile=profile,
    )


def make_machine(
    n_big: int = 1,
    n_little: int = 1,
    scheduler=None,
    seed: int = 0,
    **config_kwargs,
) -> Machine:
    """A small machine with a CFS scheduler by default."""
    from repro.schedulers.cfs import CFSScheduler

    return Machine(
        make_topology(n_big, n_little),
        scheduler if scheduler is not None else CFSScheduler(),
        MachineConfig(seed=seed, **config_kwargs),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
