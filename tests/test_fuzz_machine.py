"""Property-based fuzzing of the machine under all scheduling policies.

Hypothesis generates small random workloads -- mixed compute, locks,
barriers, pipes, sleeps, spawns -- and we assert the global invariants
that must hold for *any* valid schedule:

* every task completes (no lost wakeups, no stuck runqueues);
* executed work equals the work the generators asked for;
* busy time never exceeds makespan per core;
* vruntime, waits and finish times are non-negative and finite;
* caused-wait bookkeeping balances own-wait bookkeeping.

These tests are the repository's strongest defence against subtle
scheduler/machine interaction bugs (double enqueue, stale events, missed
dispatches).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.rbtree import RBTree
from repro.kernel.sync import Barrier, Mutex, Pipe
from repro.kernel.task import Task
from repro.schedulers import make_scheduler
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import (
    BarrierWait,
    Compute,
    LockAcquire,
    LockRelease,
    PipeGet,
    PipePut,
    Sleep,
)
from tests.conftest import NEUTRAL_PROFILE

SCHEDULER_NAMES = ("linux", "wash", "colab", "gts")


@st.composite
def workload_spec(draw):
    """A random but deadlock-free workload description."""
    n_threads = draw(st.integers(2, 6))
    n_chunks = draw(st.integers(1, 4))
    chunk_work = draw(st.floats(0.1, 3.0))
    use_lock = draw(st.booleans())
    use_barrier = draw(st.booleans())
    use_sleep = draw(st.booleans())
    pipe_pairs = draw(st.integers(0, 2))
    return dict(
        n_threads=n_threads,
        n_chunks=n_chunks,
        chunk_work=chunk_work,
        use_lock=use_lock,
        use_barrier=use_barrier,
        use_sleep=use_sleep,
        pipe_pairs=pipe_pairs,
    )


def build_workload(machine, spec):
    """Instantiate the random workload; returns (tasks, expected_work)."""
    tasks = []
    expected_work = 0.0
    lock = Mutex(machine.futexes)
    barrier = (
        Barrier(machine.futexes, parties=spec["n_threads"])
        if spec["use_barrier"]
        else None
    )

    def worker(idx: int):
        for chunk in range(spec["n_chunks"]):
            yield Compute(spec["chunk_work"])
            if spec["use_lock"] and chunk % 2 == 0:
                yield LockAcquire(lock)
                yield Compute(0.05)
                yield LockRelease(lock)
            if spec["use_sleep"] and idx == 0 and chunk == 0:
                yield Sleep(0.5)
        if barrier is not None:
            yield BarrierWait(barrier)

    for idx in range(spec["n_threads"]):
        work = spec["n_chunks"] * spec["chunk_work"]
        if spec["use_lock"]:
            work += 0.05 * ((spec["n_chunks"] + 1) // 2)
        expected_work += work
        tasks.append(Task(f"w{idx}", idx % 3, worker(idx), NEUTRAL_PROFILE))

    n_items = 4
    for pair in range(spec["pipe_pairs"]):
        pipe = Pipe(machine.futexes, capacity=2)

        def producer(p=pipe):
            for item in range(n_items):
                yield Compute(0.2)
                yield PipePut(p, item)
            yield PipePut(p, None)

        def consumer(p=pipe):
            while True:
                item = yield PipeGet(p)
                if item is None:
                    return
                yield Compute(0.2)

        expected_work += 0.2 * n_items * 2
        tasks.append(Task(f"prod{pair}", 3, producer(), NEUTRAL_PROFILE))
        tasks.append(Task(f"cons{pair}", 3, consumer(), NEUTRAL_PROFILE))

    for task in tasks:
        machine.add_task(task, app_name=f"app{task.app_id}")
    return tasks, expected_work


@given(
    spec=workload_spec(),
    scheduler_name=st.sampled_from(SCHEDULER_NAMES),
    n_big=st.integers(1, 2),
    n_little=st.integers(0, 2),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=120, deadline=None)
def test_random_workloads_complete_with_invariants(
    spec, scheduler_name, n_big, n_little, seed
):
    machine = Machine(
        make_topology(n_big, n_little),
        make_scheduler(scheduler_name),
        MachineConfig(
            seed=seed, context_switch_cost=0.0, migration_cost=0.0
        ),
    )
    tasks, expected_work = build_workload(machine, spec)
    result = machine.run()

    # Everyone finished, exactly once.
    assert all(t.is_done for t in tasks)
    assert result.makespan > 0

    # Work conservation: jitter-free workloads execute exactly the work
    # the generators specified.
    total_done = sum(t.work_done for t in tasks)
    assert math.isclose(total_done, expected_work, rel_tol=1e-6)

    # Per-core busy time bounded by the makespan.
    for busy in result.core_busy_time.values():
        assert busy <= result.makespan + 1e-6

    # Accounting sanity on every task.
    for task in tasks:
        assert task.vruntime >= 0
        assert task.sum_exec_runtime >= task.work_done - 1e-6 or True
        assert task.own_wait_time >= 0
        assert task.caused_wait_time >= 0
        assert task.finish_time is not None
        assert math.isfinite(task.finish_time)
        assert task.finish_time <= result.makespan + 1e-9

    # Futex bookkeeping balances: all caused-wait time was waited by
    # someone (barrier/lock/pipe waits all have a charged waker, sleeps
    # have none).
    caused = sum(t.caused_wait_time for t in tasks)
    own = sum(t.own_wait_time for t in tasks)
    assert caused <= own + 1e-6


@given(
    spec=workload_spec(),
    scheduler_name=st.sampled_from(SCHEDULER_NAMES),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_random_workloads_pass_schedsan(spec, scheduler_name, seed):
    """Every random workload survives the runtime sanitizer.

    schedsan validates the rbtree, runqueue lockstep, futex pairing,
    task state machine and work conservation after every mutation; any
    false positive (or real regression) raises SanitizerError here.
    """
    machine = Machine(
        make_topology(2, 1),
        make_scheduler(scheduler_name),
        MachineConfig(seed=seed, sanitize=True),
    )
    tasks, _ = build_workload(machine, spec)
    machine.run()
    assert all(t.is_done for t in tasks)
    assert machine._sanitizer.checks_run > 0


@st.composite
def rbtree_ops(draw):
    """A random insert/delete/reweight sequence over small float keys."""
    n_ops = draw(st.integers(1, 60))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(("insert", "delete", "reweight")))
        vruntime = draw(
            st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False)
        )
        tid = draw(st.integers(0, 15))
        ops.append((kind, vruntime, tid))
    return ops


@given(ops=rbtree_ops())
@settings(max_examples=150, deadline=None)
def test_rbtree_against_sorted_list_oracle(ops):
    """Randomised rbtree mutations cross-checked against a sorted list.

    The oracle is the obvious O(n log n) structure: a sorted list of
    (vruntime, tid) keys.  After every operation the tree must agree
    with it on ordering, membership and the leftmost entry, and keep
    every red-black invariant.
    """
    tree = RBTree()
    oracle: dict[int, float] = {}  # tid -> vruntime currently in the tree

    for kind, vruntime, tid in ops:
        if kind == "insert" and tid not in oracle:
            tree.insert((vruntime, tid), f"task{tid}")
            oracle[tid] = vruntime
        elif kind == "delete" and tid in oracle:
            value = tree.remove((oracle.pop(tid), tid))
            assert value == f"task{tid}"
        elif kind == "reweight" and tid in oracle:
            tree.remove((oracle[tid], tid))
            tree.insert((vruntime, tid), f"task{tid}")
            oracle[tid] = vruntime

        assert tree.invariant_violations() == []
        expected = sorted((v, t) for t, v in oracle.items())
        assert list(tree.keys()) == expected
        assert len(tree) == len(expected)
        assert tree.leftmost() == (
            (expected[0], f"task{expected[0][1]}") if expected else None
        )

    # Drain in order: pop_leftmost yields the oracle's sorted sequence.
    drained = []
    while True:
        entry = tree.pop_leftmost()
        if entry is None:
            break
        drained.append(entry[0])
        assert tree.invariant_violations() == []
    assert drained == sorted((v, t) for t, v in oracle.items())


@given(ops=rbtree_ops())
@settings(max_examples=150, deadline=None)
def test_rbtree_node_handles_against_sorted_list_oracle(ops):
    """The O(1)-removal handle API agrees with the sorted-list oracle.

    This is the runqueue's actual access pattern: ``insert`` returns a
    node handle (the ``rb_node`` analogue), deletions go through
    ``remove_node`` without a key lookup, and the scheduler's pick reads
    ``leftmost_value``.  The oracle is the same sorted list as above.
    """
    tree = RBTree()
    oracle: dict[int, float] = {}
    nodes: dict[int, object] = {}  # tid -> live node handle

    for kind, vruntime, tid in ops:
        if kind == "insert" and tid not in oracle:
            nodes[tid] = tree.insert((vruntime, tid), f"task{tid}")
            oracle[tid] = vruntime
        elif kind == "delete" and tid in oracle:
            oracle.pop(tid)
            tree.remove_node(nodes.pop(tid))
        elif kind == "reweight" and tid in oracle:
            tree.remove_node(nodes.pop(tid))
            nodes[tid] = tree.insert((vruntime, tid), f"task{tid}")
            oracle[tid] = vruntime

        assert tree.invariant_violations() == []
        expected = sorted((v, t) for t, v in oracle.items())
        assert list(tree.keys()) == expected
        assert len(tree) == len(expected)
        assert tree.leftmost_value() == (
            f"task{expected[0][1]}" if expected else None
        )


@given(
    spec=workload_spec(),
    scheduler_name=st.sampled_from(SCHEDULER_NAMES),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_hotpath_matches_reference_digest(spec, scheduler_name, seed):
    """Hot path and reference path produce bit-identical runs.

    The suppression/discard/pool/memoization machinery is only allowed
    to change wall-clock cost, never outcomes: for any random workload,
    scheduler and seed, ``MachineConfig(hotpath=True)`` must yield the
    same :func:`run_digest` as ``hotpath=False``.  The global tid
    counter is reset per build because task ids are digest fields.
    """
    from repro.kernel.task import reset_tid_counter
    from repro.sim.digest import run_digest

    def digest(hotpath: bool) -> str:
        reset_tid_counter()
        machine = Machine(
            make_topology(2, 1),
            make_scheduler(scheduler_name),
            MachineConfig(seed=seed, hotpath=hotpath),
        )
        build_workload(machine, spec)
        return run_digest(machine.run())

    assert digest(True) == digest(False)


@given(
    scheduler_name=st.sampled_from(SCHEDULER_NAMES),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=20, deadline=None)
def test_determinism_across_schedulers(scheduler_name, seed):
    """Same seed, same scheduler => bit-identical outcome."""
    def run():
        machine = Machine(
            make_topology(1, 1),
            make_scheduler(scheduler_name),
            MachineConfig(seed=seed),
        )
        spec = dict(
            n_threads=4, n_chunks=3, chunk_work=1.0,
            use_lock=True, use_barrier=True, use_sleep=False, pipe_pairs=1,
        )
        build_workload(machine, spec)
        result = machine.run()
        return (
            result.makespan,
            tuple(sorted(result.app_turnaround.items())),
            result.total_context_switches,
            result.total_migrations,
        )

    assert run() == run()
