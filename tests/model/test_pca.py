"""PCA and counter-selection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.pca import PCA, select_counters


def correlated_matrix(rng, n=200):
    """Two informative dimensions + noise columns."""
    latent = rng.normal(size=(n, 2))
    informative = latent @ np.array([[1.0, 0.5, 0.0], [0.0, 1.0, 2.0]])
    noise = rng.normal(scale=1.0, size=(n, 5))
    return np.hstack([informative, noise]), latent


class TestPCA:
    def test_requires_two_samples(self):
        with pytest.raises(ModelError):
            PCA().fit(np.ones((1, 3)))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ModelError):
            PCA().transform(np.ones((2, 3)))

    def test_scores_before_fit_rejected(self):
        with pytest.raises(ModelError):
            PCA().counter_scores()

    def test_explained_variance_sorted_descending(self, rng):
        matrix, _ = correlated_matrix(rng)
        pca = PCA().fit(matrix)
        ev = pca.explained_variance_
        assert all(ev[i] >= ev[i + 1] for i in range(len(ev) - 1))

    def test_variance_ratio_sums_to_one(self, rng):
        matrix, _ = correlated_matrix(rng)
        pca = PCA().fit(matrix)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_n_components_truncates(self, rng):
        matrix, _ = correlated_matrix(rng)
        pca = PCA(n_components=2).fit(matrix)
        assert pca.components_.shape[0] == 2

    def test_transform_shape(self, rng):
        matrix, _ = correlated_matrix(rng)
        pca = PCA(n_components=3).fit(matrix)
        projected = pca.transform(matrix)
        assert projected.shape == (matrix.shape[0], 3)

    def test_first_component_captures_dominant_direction(self, rng):
        n = 500
        dominant = rng.normal(size=n)
        matrix = np.stack(
            [dominant, dominant * 2 + rng.normal(scale=0.01, size=n),
             rng.normal(scale=0.01, size=n)],
            axis=1,
        )
        pca = PCA(n_components=1).fit(matrix)
        loadings = np.abs(pca.components_[0])
        assert loadings[0] > loadings[2]
        assert loadings[1] > loadings[2]

    def test_constant_column_does_not_crash(self, rng):
        matrix = np.hstack(
            [np.ones((50, 1)), rng.normal(size=(50, 3))]
        )
        pca = PCA().fit(matrix)
        assert np.isfinite(pca.counter_scores()).all()


class TestSelectCounters:
    def make_data(self, rng, n=400, n_noise=30):
        """Target depends on columns "signal0"/"signal1" only."""
        signal = rng.normal(size=(n, 2))
        target = 1.5 + signal[:, 0] * 0.8 - signal[:, 1] * 0.5
        noise = rng.normal(size=(n, n_noise))
        matrix = np.hstack([signal, noise])
        names = ["signal0", "signal1"] + [f"noise{i}" for i in range(n_noise)]
        return matrix, names, target

    def test_target_aware_selection_finds_signal(self, rng):
        matrix, names, target = self.make_data(rng)
        selected = select_counters(matrix, names, k=2, targets=target)
        assert set(selected) == {"signal0", "signal1"}

    def test_exclusion_respected(self, rng):
        matrix, names, target = self.make_data(rng)
        selected = select_counters(
            matrix, names, k=2, targets=target, exclude={"signal0"}
        )
        assert "signal0" not in selected
        assert "signal1" in selected

    def test_k_results_returned(self, rng):
        matrix, names, target = self.make_data(rng)
        assert len(select_counters(matrix, names, k=5, targets=target)) == 5

    def test_name_count_mismatch_rejected(self, rng):
        matrix, names, target = self.make_data(rng)
        with pytest.raises(ModelError):
            select_counters(matrix, names[:-1], k=2, targets=target)

    def test_target_shape_mismatch_rejected(self, rng):
        matrix, names, target = self.make_data(rng)
        with pytest.raises(ModelError):
            select_counters(matrix, names, k=2, targets=target[:-1])

    def test_too_many_requested_rejected(self, rng):
        matrix = rng.normal(size=(50, 3))
        with pytest.raises(ModelError):
            select_counters(matrix, ["a", "b", "c"], k=3, exclude={"a"})

    def test_selection_without_target_uses_loadings(self, rng):
        matrix, names, _target = self.make_data(rng, n_noise=5)
        selected = select_counters(matrix, names, k=3)
        assert len(selected) == 3
