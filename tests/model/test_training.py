"""Offline training pipeline tests (reduced-scale Table 2 regeneration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.training import (
    TrainingSample,
    collect_training_set,
    train_speedup_model,
)
from repro.sim.counters import WIDE_VECTOR_SIZE

#: Reduced settings: 4 benchmarks, 1 replica, tiny work scale.
FAST_KWARGS = dict(
    seed=77,
    work_scale=0.08,
    n_cores=2,
    benchmarks=["blackscholes", "lu_cb", "radix", "fluidanimate"],
    replicas=1,
)


@pytest.fixture(scope="module")
def samples():
    return collect_training_set(**FAST_KWARGS)


@pytest.fixture(scope="module")
def trained():
    return train_speedup_model(n_selected=4, **FAST_KWARGS)


class TestCollection:
    def test_samples_cover_all_benchmarks(self, samples):
        assert {s.benchmark for s in samples} == set(FAST_KWARGS["benchmarks"])

    def test_counter_vectors_full_width(self, samples):
        for sample in samples:
            assert sample.counters.shape == (WIDE_VECTOR_SIZE,)

    def test_measured_speedups_physical(self, samples):
        for sample in samples:
            assert 0.8 <= sample.speedup <= 3.2

    def test_compute_bound_faster_than_memory_bound(self, samples):
        by_bench = {}
        for sample in samples:
            by_bench.setdefault(sample.benchmark, []).append(sample.speedup)
        # lu_cb is compute-bound (low comm), blackscholes memory-bound.
        assert np.mean(by_bench["lu_cb"]) > np.mean(by_bench["blackscholes"])

    def test_deterministic(self):
        a = collect_training_set(**FAST_KWARGS)
        b = collect_training_set(**FAST_KWARGS)
        assert len(a) == len(b)
        assert all(
            x.speedup == y.speedup and (x.counters == y.counters).all()
            for x, y in zip(a, b)
        )

    def test_sample_dataclass_fields(self, samples):
        sample = samples[0]
        assert isinstance(sample, TrainingSample)
        assert sample.thread_name


class TestTraining:
    def test_model_beats_constant_predictor(self, trained):
        _model, report = trained
        assert report.r2 > 0.3

    def test_report_structure(self, trained):
        model, report = trained
        assert len(report.selected_counters) == 4
        assert report.n_samples >= 10
        assert report.mae > 0
        assert model.selected_counters == report.selected_counters

    def test_normalizer_not_selected(self, trained):
        _model, report = trained
        assert "commit.committedInsts" not in report.selected_counters

    def test_online_estimate_tracks_profile(self, trained):
        """Feed windows generated from known profiles; prediction should
        separate fast from slow threads."""
        from repro.sim.counters import PerformanceCounters
        from tests.conftest import FAST_PROFILE, SLOW_PROFILE, make_simple_task

        model, _report = trained
        estimates = {}
        for label, profile in (("fast", FAST_PROFILE), ("slow", SLOW_PROFILE)):
            counters = PerformanceCounters(
                profile=profile, rng=np.random.default_rng(3)
            )
            counters.record_compute(work=8.0, cpu_time=8.0)
            task = make_simple_task(profile=profile)
            estimates[label] = model.estimate(task, counters.read_window())
        assert estimates["fast"] > estimates["slow"]

    def test_full_default_training_selects_mostly_real_counters(self):
        """At full training scale most selected counters are Table 2 ones
        (a couple of spurious distractors are tolerated, as documented)."""
        from repro.model.training import default_training_report

        report = default_training_report()
        real = [n for n in report.selected_counters if not n.startswith("distractor")]
        assert len(real) >= 3
        assert report.r2 > 0.6
