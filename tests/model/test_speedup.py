"""Speedup estimator tests (oracle + learned)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.regression import LinearRegression
from repro.model.speedup import (
    MIN_WINDOW_INSTRUCTIONS,
    SPEEDUP_MAX,
    SPEEDUP_MIN,
    LearnedSpeedupModel,
    OracleSpeedupModel,
)
from tests.conftest import FAST_PROFILE, SLOW_PROFILE, make_simple_task


def fitted_regression(coefs, intercept=1.0):
    """A LinearRegression with exactly chosen parameters."""
    rng = np.random.default_rng(0)
    coefs = np.asarray(coefs, dtype=float)
    x = rng.normal(size=(50, len(coefs)))
    y = intercept + x @ coefs
    model = LinearRegression().fit(x, y)
    return model


class TestOracle:
    def test_returns_ground_truth(self):
        oracle = OracleSpeedupModel()
        fast = make_simple_task(profile=FAST_PROFILE)
        assert oracle.estimate(fast, {}) == pytest.approx(FAST_PROFILE.speedup())

    def test_noise_is_deterministic_per_seed(self):
        task = make_simple_task(profile=FAST_PROFILE)
        a = OracleSpeedupModel(noise_std=0.2, seed=5)
        b = OracleSpeedupModel(noise_std=0.2, seed=5)
        assert a.estimate(task, {}) == b.estimate(task, {})

    def test_noise_clipped_to_valid_range(self):
        oracle = OracleSpeedupModel(noise_std=5.0, seed=1)
        task = make_simple_task(profile=SLOW_PROFILE)
        for _ in range(100):
            value = oracle.estimate(task, {})
            assert SPEEDUP_MIN <= value <= SPEEDUP_MAX


class TestLearned:
    def make_model(self):
        regression = fitted_regression([10.0, -5.0], intercept=1.5)
        return LearnedSpeedupModel(["fp_regfile_writes", "dcache.tags.tagsinuse"], regression)

    def test_requires_fitted_regression(self):
        with pytest.raises(ModelError):
            LearnedSpeedupModel(["a"], LinearRegression())

    def test_counter_count_must_match_coefficients(self):
        regression = fitted_regression([1.0, 2.0])
        with pytest.raises(ModelError):
            LearnedSpeedupModel(["only-one"], regression)

    def test_features_normalised_by_instructions(self):
        model = self.make_model()
        window = {
            "commit.committedInsts": 2e6,
            "fp_regfile_writes": 4e5,
            "dcache.tags.tagsinuse": 2e5,
        }
        features = model.features_from(window)
        assert features == pytest.approx([0.2, 0.1])

    def test_dead_window_returns_none(self):
        model = self.make_model()
        window = {"commit.committedInsts": MIN_WINDOW_INSTRUCTIONS / 10}
        assert model.features_from(window) is None
        assert model.estimate(make_simple_task(), window) is None

    def test_missing_counters_default_to_zero(self):
        model = self.make_model()
        window = {"commit.committedInsts": 1e6}
        features = model.features_from(window)
        assert features == pytest.approx([0.0, 0.0])

    def test_estimate_clipped(self):
        model = self.make_model()
        window = {
            "commit.committedInsts": 1e6,
            "fp_regfile_writes": 1e9,  # absurd ratio forces a huge raw value
            "dcache.tags.tagsinuse": 0.0,
        }
        value = model.estimate(make_simple_task(), window)
        assert value == SPEEDUP_MAX

    def test_describe_mentions_counters_and_intercept(self):
        model = self.make_model()
        text = model.describe()
        assert "fp_regfile_writes" in text
        assert "speedup =" in text
        assert "1.5" in text
