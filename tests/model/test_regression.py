"""OLS regression tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.regression import LinearRegression


class TestFit:
    def test_recovers_exact_linear_relation(self, rng):
        x = rng.normal(size=(100, 3))
        y = 2.0 + x @ np.array([1.5, -0.5, 3.0])
        model = LinearRegression().fit(x, y)
        assert model.intercept_ == pytest.approx(2.0)
        assert model.coef_ == pytest.approx([1.5, -0.5, 3.0])
        assert model.r2_ == pytest.approx(1.0)
        assert model.residual_std_ == pytest.approx(0.0, abs=1e-8)

    def test_r2_reasonable_with_noise(self, rng):
        x = rng.normal(size=(500, 2))
        y = 1.0 + x @ np.array([2.0, 0.0]) + rng.normal(scale=0.5, size=500)
        model = LinearRegression().fit(x, y)
        assert 0.8 < model.r2_ < 1.0
        assert model.residual_std_ == pytest.approx(0.5, rel=0.2)

    def test_underdetermined_rejected(self, rng):
        with pytest.raises(ModelError):
            LinearRegression().fit(rng.normal(size=(3, 5)), np.zeros(3))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ModelError):
            LinearRegression().fit(rng.normal(size=(10, 2)), np.zeros(9))

    def test_one_dim_features_rejected(self, rng):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.zeros(10), np.zeros(10))

    def test_constant_target(self, rng):
        x = rng.normal(size=(50, 2))
        model = LinearRegression().fit(x, np.full(50, 3.0))
        assert model.intercept_ == pytest.approx(3.0)
        assert model.r2_ == pytest.approx(1.0)  # degenerate total variance


class TestPredict:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelError):
            LinearRegression().predict(np.zeros(3))

    def test_predict_single_row(self, rng):
        x = rng.normal(size=(50, 2))
        y = x @ np.array([1.0, 1.0])
        model = LinearRegression().fit(x, y)
        single = model.predict(np.array([2.0, 3.0]))
        assert np.isscalar(single) or single.ndim == 0
        assert float(single) == pytest.approx(5.0)

    def test_predict_batch(self, rng):
        x = rng.normal(size=(50, 2))
        y = x @ np.array([1.0, -1.0]) + 4.0
        model = LinearRegression().fit(x, y)
        batch = model.predict(x[:7])
        assert batch.shape == (7,)
        assert batch == pytest.approx(y[:7])

    def test_wrong_feature_count_rejected(self, rng):
        x = rng.normal(size=(50, 2))
        model = LinearRegression().fit(x, np.zeros(50))
        with pytest.raises(ModelError):
            model.predict(np.zeros(3))

    def test_is_fitted_flag(self, rng):
        model = LinearRegression()
        assert not model.is_fitted
        model.fit(rng.normal(size=(10, 1)), np.zeros(10))
        assert model.is_fitted
