"""Fairness measure tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import (
    fairness_index,
    jains_index,
    max_slowdown,
    slowdown_spread,
    slowdowns,
)
from repro.errors import ExperimentError

positive = st.floats(0.01, 1e4)


class TestSlowdowns:
    def test_per_app_map(self):
        result = slowdowns({"a": 200.0, "b": 150.0}, {"a": 100.0, "b": 100.0})
        assert result == {"a": 2.0, "b": 1.5}

    def test_key_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            slowdowns({"a": 1.0}, {"b": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            slowdowns({}, {})

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError):
            slowdowns({"a": 0.0}, {"a": 1.0})


class TestJainsIndex:
    def test_uniform_is_one(self):
        assert jains_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_value_is_one(self):
        assert jains_index([7.0]) == pytest.approx(1.0)

    def test_skew_lowers_index(self):
        assert jains_index([1.0, 100.0]) < jains_index([1.0, 2.0])

    def test_lower_bound_one_over_n(self):
        # One dominant value approaches 1/n.
        index = jains_index([1e-6, 1e-6, 1e-6, 1000.0])
        assert index == pytest.approx(0.25, rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            jains_index([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError):
            jains_index([1.0, -2.0])

    @given(st.lists(positive, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, values):
        index = jains_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.lists(positive, min_size=1, max_size=12), st.floats(0.1, 10))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariant(self, values, factor):
        assert jains_index([v * factor for v in values]) == pytest.approx(
            jains_index(values), rel=1e-6
        )


class TestDerivedMeasures:
    def test_fairness_index_perfect(self):
        assert fairness_index(
            {"a": 200.0, "b": 300.0}, {"a": 100.0, "b": 150.0}
        ) == pytest.approx(1.0)

    def test_max_slowdown(self):
        app, value = max_slowdown(
            {"a": 300.0, "b": 150.0}, {"a": 100.0, "b": 100.0}
        )
        assert app == "a"
        assert value == 3.0

    def test_slowdown_spread(self):
        spread = slowdown_spread(
            {"a": 300.0, "b": 150.0}, {"a": 100.0, "b": 100.0}
        )
        assert spread == pytest.approx(2.0)

    def test_even_spread_is_one(self):
        assert slowdown_spread(
            {"a": 200.0, "b": 100.0}, {"a": 100.0, "b": 50.0}
        ) == pytest.approx(1.0)
