"""Trace analysis and export tests."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import campaign_to_dict, result_to_dict
from repro.analysis.traces import core_utilization, migration_summary, occupancy_rows
from repro.errors import ExperimentError
from tests.conftest import make_machine, make_simple_task

FREE = dict(context_switch_cost=0.0, migration_cost=0.0)


def traced_run(n_big=1, n_little=1, n_tasks=3):
    machine = make_machine(n_big, n_little, trace=True, **FREE)
    tasks = [
        make_simple_task(f"t{i}", work=5.0, app_id=i) for i in range(n_tasks)
    ]
    for task in tasks:
        machine.add_task(task, app_name=f"app{task.app_id}")
    return machine, machine.run()


class TestOccupancy:
    def test_rows_cover_all_cores(self):
        machine, result = traced_run()
        tid_to_app = {t.tid: t.app_id for t in machine.tasks}
        rows = occupancy_rows(result, tid_to_app, n_cores=2, buckets=16)
        assert set(rows) == {0, 1}
        assert all(len(r) == 16 for r in rows.values())

    def test_busy_core_has_nonidle_buckets(self):
        machine, result = traced_run()
        tid_to_app = {t.tid: t.app_id for t in machine.tasks}
        rows = occupancy_rows(result, tid_to_app, n_cores=2, buckets=16)
        assert any(cell is not None for cell in rows[0])

    def test_traceless_run_rejected(self):
        machine = make_machine(1, 0)
        machine.add_task(make_simple_task(work=1.0))
        result = machine.run()
        with pytest.raises(ExperimentError):
            occupancy_rows(result, {}, n_cores=1)

    def test_bad_bucket_count_rejected(self):
        machine, result = traced_run()
        with pytest.raises(ExperimentError):
            occupancy_rows(result, {}, n_cores=2, buckets=0)

    def test_zero_duration_run_rejected(self):
        """Regression: a zero-makespan trace must not divide by zero."""
        from repro.sim.machine import RunResult

        result = RunResult(
            topology_name="1B1S",
            scheduler_name="linux",
            makespan=0.0,
            app_turnaround={},
            app_names={},
            tasks=[],
            scheduler_stats=None,
            total_context_switches=0,
            total_migrations=0,
            core_busy_time={},
            trace=[(0.0, 0, 1)],
        )
        with pytest.raises(ExperimentError, match="zero-duration"):
            occupancy_rows(result, {1: 0}, n_cores=1)

    def test_typed_events_preferred_over_legacy_tuples(self):
        machine, result = traced_run()
        assert result.events  # the shim records typed events too
        tid_to_app = {t.tid: t.app_id for t in machine.tasks}
        rows = occupancy_rows(result, tid_to_app, n_cores=2, buckets=16)
        # Dropping the typed events falls back to the legacy path; both
        # views agree on which buckets are busy with which app.
        result.events = []
        legacy_rows = occupancy_rows(result, tid_to_app, n_cores=2, buckets=16)
        for core in rows:
            for typed, legacy in zip(rows[core], legacy_rows[core]):
                if typed is not None and legacy is not None:
                    assert typed == legacy


class TestUtilization:
    def test_fractions_in_unit_interval(self):
        _machine, result = traced_run()
        utilization = core_utilization(result)
        assert set(utilization) == {0, 1}
        for value in utilization.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_single_core_fully_busy(self):
        machine = make_machine(1, 0, **FREE)
        machine.add_task(make_simple_task(work=4.0))
        result = machine.run()
        assert core_utilization(result)[0] == pytest.approx(1.0)


class TestMigrationSummary:
    def test_counts_by_app(self):
        _machine, result = traced_run(n_big=2, n_little=2, n_tasks=6)
        summary = migration_summary(result)
        assert summary.total == sum(summary.per_app.values())
        assert summary.most_migrated_count >= 0


class TestExport:
    def test_result_roundtrips_through_json(self):
        _machine, result = traced_run()
        payload = result_to_dict(result)
        text = json.dumps(payload)
        decoded = json.loads(text)
        assert decoded["scheduler"] == "linux"
        assert decoded["makespan_ms"] == pytest.approx(result.makespan)
        assert len(decoded["tasks"]) == 3
        assert set(decoded["apps"]) == {"app0", "app1", "app2"}

    def test_campaign_export(self):
        from repro.experiments.runner import ExperimentContext, evaluate_mix
        from repro.model.speedup import OracleSpeedupModel

        ctx = ExperimentContext(
            seed=2, work_scale=0.04, estimator=OracleSpeedupModel()
        )
        points = [
            evaluate_mix(ctx, "Sync-1", "2B2S", scheduler)
            for scheduler in ("linux", "colab")
        ]
        payload = campaign_to_dict(points)
        json.dumps(payload)  # must be serialisable
        assert payload["count"] == 2
        assert payload["points"][0]["mix"] == "Sync-1"
        assert payload["points"][1]["scheduler"] == "colab"


class TestEdgeCases:
    """Empty, zero-duration, and single-task runs (satellite coverage)."""

    @staticmethod
    def empty_result(makespan=0.0):
        """A structurally valid zero-duration result (machines refuse to
        run without tasks, so the edge case is built directly)."""
        from repro.sim.machine import RunResult

        return RunResult(
            topology_name="2B2S", scheduler_name="linux", makespan=makespan,
            app_turnaround={}, app_names={}, tasks=[], scheduler_stats=None,
            total_context_switches=0, total_migrations=0, core_busy_time={},
        )

    def test_core_utilization_zero_duration_run_rejected(self):
        with pytest.raises(ExperimentError):
            core_utilization(self.empty_result(makespan=0.0))

    def test_migration_summary_empty_run(self):
        summary = migration_summary(self.empty_result())
        assert summary.total == 0
        assert summary.per_app == {}
        assert summary.most_migrated_task == ""
        assert summary.most_migrated_count == 0

    def test_single_task_run_utilization_bounded(self):
        machine = make_machine(1, 1, **FREE)
        machine.add_task(make_simple_task("solo", work=5.0))
        result = machine.run()
        utilization = core_utilization(result)
        assert set(utilization) == {0, 1}
        for value in utilization.values():
            assert 0.0 <= value <= 1.0 + 1e-9
        # One task, one core: the other core never runs anything.
        assert min(utilization.values()) == 0.0

    def test_single_task_migration_summary(self):
        machine = make_machine(1, 1, **FREE)
        machine.add_task(make_simple_task("solo", work=5.0), app_name="app")
        result = machine.run()
        summary = migration_summary(result)
        assert summary.per_app == {"app": summary.most_migrated_count}
        assert summary.most_migrated_task == "solo"
        assert summary.total == summary.most_migrated_count

    def test_occupancy_rows_single_task(self):
        machine = make_machine(1, 0, trace=True, **FREE)
        machine.add_task(make_simple_task("solo", work=5.0))
        result = machine.run()
        tid_to_app = {t.tid: t.app_id for t in machine.tasks}
        rows = occupancy_rows(result, tid_to_app, n_cores=1, buckets=8)
        assert set(rows) == {0}
        assert any(cell is not None for cell in rows[0])
