"""Exception hierarchy tests."""

from __future__ import annotations

import pytest

from repro.errors import (
    ExperimentError,
    KernelError,
    ModelError,
    ReproError,
    SchedulerError,
    SimulationError,
    WorkloadError,
)

ALL_ERRORS = (
    SimulationError,
    SchedulerError,
    KernelError,
    WorkloadError,
    ModelError,
    ExperimentError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catching_base_catches_all(self):
        for exc in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise exc("boom")

    def test_domains_are_distinct(self):
        assert not issubclass(KernelError, SchedulerError)
        assert not issubclass(SchedulerError, KernelError)
        assert not issubclass(ModelError, SimulationError)

    def test_message_preserved(self):
        try:
            raise WorkloadError("bad thread count")
        except ReproError as caught:
            assert "bad thread count" in str(caught)
