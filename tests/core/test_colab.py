"""COLAB scheduler integration and policy-surface tests."""

from __future__ import annotations

import pytest

from repro.core.colab import COLABScheduler
from repro.core.preemption import ScaleSlicePolicy
from repro.kernel.task import CoreLabel
from repro.model.speedup import OracleSpeedupModel
from repro.workloads.benchmarks import instantiate_benchmark
from repro.workloads.programs import ProgramEnv
from tests.conftest import (
    FAST_PROFILE,
    SLOW_PROFILE,
    make_machine,
    make_simple_task,
)


def colab_machine(n_big=2, n_little=2, **kwargs):
    kwargs.setdefault("estimator", OracleSpeedupModel())
    machine = make_machine(n_big, n_little, scheduler=COLABScheduler(**kwargs))
    return machine, machine.scheduler


class TestScaleSlicePolicy:
    def test_big_core_virtual_time_scaled(self):
        machine, sched = colab_machine()
        task = make_simple_task()
        task.predicted_speedup = 2.0
        sched.charge(task, machine.big_cores[0], 3.0, 3.0)
        assert task.vruntime == pytest.approx(6.0)

    def test_little_core_unscaled(self):
        machine, sched = colab_machine()
        task = make_simple_task()
        task.predicted_speedup = 2.0
        sched.charge(task, machine.little_cores[0], 3.0, 3.0)
        assert task.vruntime == pytest.approx(3.0)

    def test_big_slices_shorter(self):
        machine, sched = colab_machine()
        task = make_simple_task()
        task.predicted_speedup = 2.0
        big_slice = sched.slice_for(task, machine.big_cores[0])
        little_slice = sched.slice_for(task, machine.little_cores[0])
        assert big_slice == pytest.approx(little_slice / 2.0)

    def test_ablation_switch_restores_cfs_accounting(self):
        machine, sched = colab_machine(scale_slice=False)
        task = make_simple_task()
        task.predicted_speedup = 2.0
        sched.charge(task, machine.big_cores[0], 3.0, 3.0)
        assert task.vruntime == pytest.approx(3.0)
        assert sched.slice_for(task, machine.big_cores[0]) == pytest.approx(
            sched.slice_for(task, machine.little_cores[0])
        )

    def test_policy_floor_on_slice(self):
        policy = ScaleSlicePolicy(min_granularity=0.75)
        machine, _ = colab_machine()
        task = make_simple_task()
        task.predicted_speedup = 2.9
        core = machine.big_cores[0]
        for i in range(30):
            stub = make_simple_task(f"s{i}")
            stub.mark_ready()
            core.rq.enqueue(stub)
        assert policy.slice_for(task, core) >= 0.375

    def test_speedup_below_one_clamped(self):
        policy = ScaleSlicePolicy()
        machine, _ = colab_machine()
        task = make_simple_task()
        task.predicted_speedup = 0.5  # defensive: estimators clip, but still
        assert policy.charge_scale(task, machine.big_cores[0]) == 1.0


class TestWakeupPreemption:
    def _core_with_running(self, machine, vruntime, blocking=0.0):
        core = machine.big_cores[0]
        task = make_simple_task("running")
        task.vruntime = vruntime
        task.blocking_level = blocking
        task.mark_ready()
        task.mark_running(core.core_id, "big")
        core.current = task
        core.run_started = 0.0
        return core, task

    def test_vruntime_lag_preempts(self):
        machine, sched = colab_machine()
        core, _running = self._core_with_running(machine, vruntime=10.0)
        woken = make_simple_task("woken")
        woken.vruntime = 1.0
        assert sched.check_preempt_wakeup(core, woken, 0.0)

    def test_critical_wakeup_preempts_on_big(self):
        machine, sched = colab_machine()
        core, _running = self._core_with_running(machine, vruntime=2.0, blocking=0.1)
        woken = make_simple_task("critical")
        woken.vruntime = 1.5  # small lag, below wakeup granularity
        woken.blocking_level = 9.0
        assert sched.check_preempt_wakeup(core, woken, 0.0)

    def test_non_critical_small_lag_does_not_preempt(self):
        machine, sched = colab_machine()
        core, _running = self._core_with_running(machine, vruntime=2.0, blocking=5.0)
        woken = make_simple_task("meek")
        woken.vruntime = 1.5
        woken.blocking_level = 0.0
        assert not sched.check_preempt_wakeup(core, woken, 0.0)

    def test_idle_core_returns_false(self):
        machine, sched = colab_machine()
        assert not sched.check_preempt_wakeup(
            machine.big_cores[0], make_simple_task(), 0.0
        )


class TestSelectCore:
    def test_idle_preferred_cluster_first(self):
        machine, sched = colab_machine()
        task = make_simple_task()
        task.core_label = CoreLabel.LITTLE
        chosen = sched.select_core(task, 0.0)
        assert not chosen.is_big

    def test_idle_anywhere_before_round_robin(self):
        machine, sched = colab_machine()
        task = make_simple_task()
        task.core_label = CoreLabel.BIG
        for big in machine.big_cores:
            big.current = make_simple_task("busy")
        chosen = sched.select_core(task, 0.0)
        assert not chosen.is_big  # both bigs busy; take an idle little

    def test_round_robin_when_saturated(self):
        machine, sched = colab_machine()
        for core in machine.cores:
            core.current = make_simple_task("busy")
        task = make_simple_task()
        task.core_label = CoreLabel.BIG
        first = sched.select_core(task, 0.0)
        second = sched.select_core(task, 0.0)
        assert first.is_big and second.is_big
        assert first.core_id != second.core_id

    def test_label_period(self):
        _machine, sched = colab_machine()
        assert sched.label_period() == 10.0


class TestIntegration:
    def test_runs_mixed_workload(self):
        machine, sched = colab_machine()
        env = ProgramEnv.for_machine(machine, work_scale=0.1)
        machine.add_program(
            instantiate_benchmark("ferret", env, app_id=0, n_threads=6)
        )
        machine.add_program(
            instantiate_benchmark("blackscholes", env, app_id=1, n_threads=4)
        )
        result = machine.run()
        assert len(result.app_turnaround) == 2
        assert sched.labeler.passes > 0

    def test_core_sensitive_threads_gravitate_to_big_cores(self):
        machine, _sched = colab_machine()
        env = ProgramEnv.for_machine(machine, work_scale=0.4)
        machine.add_program(
            instantiate_benchmark("lu_cb", env, app_id=0, n_threads=2)
        )
        machine.add_program(
            instantiate_benchmark("blackscholes", env, app_id=1, n_threads=2)
        )
        machine.run()
        fast = [t for t in machine.tasks if "lu_cb" in t.name]
        slow = [t for t in machine.tasks if "blackscholes" in t.name]

        def big_share(tasks):
            big = sum(t.exec_time_by_kind["big"] for t in tasks)
            return big / sum(t.sum_exec_runtime for t in tasks)

        assert big_share(fast) > big_share(slow)

    def test_labels_settle_by_profile(self):
        machine, _sched = colab_machine(n_big=1, n_little=1)
        env = ProgramEnv.for_machine(machine, work_scale=0.6)
        machine.add_program(
            instantiate_benchmark("lu_cb", env, app_id=0, n_threads=2)
        )
        machine.run()
        # lu_cb is compute-bound: threads should end labeled BIG.
        assert any(t.core_label is CoreLabel.BIG for t in machine.tasks)

    def test_little_preemption_happens_in_practice(self):
        machine, sched = colab_machine(n_big=1, n_little=2)
        env = ProgramEnv.for_machine(machine, work_scale=0.3)
        machine.add_program(
            instantiate_benchmark("fluidanimate", env, app_id=0, n_threads=6)
        )
        machine.run()
        assert sched.selector.decisions["preempt_little"] > 0

    def test_select_core_before_attach_rejected(self):
        sched = COLABScheduler(estimator=OracleSpeedupModel())
        with pytest.raises(RuntimeError):
            sched.select_core(make_simple_task(), 0.0)
