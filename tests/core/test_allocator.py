"""Hierarchical round-robin allocator tests (Algorithm 1, top half)."""

from __future__ import annotations

import pytest

from repro.core.allocator import HierarchicalRRAllocator
from repro.errors import SchedulerError
from repro.kernel.task import CoreLabel
from repro.sim.core import BIG_SPEC, LITTLE_SPEC, Core
from tests.conftest import make_simple_task


def cores(n_big, n_little):
    bigs = [Core(core_id=i, spec=BIG_SPEC) for i in range(n_big)]
    littles = [
        Core(core_id=n_big + i, spec=LITTLE_SPEC) for i in range(n_little)
    ]
    return bigs, littles


def labeled_task(label):
    task = make_simple_task()
    task.core_label = label
    return task


class TestRoundRobin:
    def test_big_label_cycles_big_cluster(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        picks = [alloc.allocate(labeled_task(CoreLabel.BIG)).core_id for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_little_label_cycles_little_cluster(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        picks = [
            alloc.allocate(labeled_task(CoreLabel.LITTLE)).core_id for _ in range(4)
        ]
        assert picks == [2, 3, 2, 3]

    def test_any_label_cycles_all_cores(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        picks = [alloc.allocate(labeled_task(CoreLabel.ANY)).core_id for _ in range(5)]
        assert picks == [0, 1, 2, 3, 0]

    def test_cursors_are_independent(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        assert alloc.allocate(labeled_task(CoreLabel.BIG)).core_id == 0
        assert alloc.allocate(labeled_task(CoreLabel.ANY)).core_id == 0
        assert alloc.allocate(labeled_task(CoreLabel.BIG)).core_id == 1
        assert alloc.allocate(labeled_task(CoreLabel.ANY)).core_id == 1

    def test_allocation_counters(self):
        bigs, littles = cores(1, 1)
        alloc = HierarchicalRRAllocator(bigs, littles)
        alloc.allocate(labeled_task(CoreLabel.BIG))
        alloc.allocate(labeled_task(CoreLabel.BIG))
        alloc.allocate(labeled_task(CoreLabel.LITTLE))
        assert alloc.allocations[CoreLabel.BIG] == 2
        assert alloc.allocations[CoreLabel.LITTLE] == 1
        assert alloc.allocations[CoreLabel.ANY] == 0


class TestFallbacks:
    def test_big_label_on_little_only_machine(self):
        bigs, littles = cores(0, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        core = alloc.allocate(labeled_task(CoreLabel.BIG))
        assert not core.is_big

    def test_little_label_on_big_only_machine(self):
        bigs, littles = cores(2, 0)
        alloc = HierarchicalRRAllocator(bigs, littles)
        core = alloc.allocate(labeled_task(CoreLabel.LITTLE))
        assert core.is_big

    def test_no_cores_rejected(self):
        with pytest.raises(SchedulerError):
            HierarchicalRRAllocator([], [])

    def test_cluster_for(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        assert alloc.cluster_for(labeled_task(CoreLabel.BIG)) == bigs
        assert alloc.cluster_for(labeled_task(CoreLabel.LITTLE)) == littles
        assert len(alloc.cluster_for(labeled_task(CoreLabel.ANY))) == 4

    def test_all_cores_sorted_by_id(self):
        bigs, littles = cores(2, 2)
        alloc = HierarchicalRRAllocator(bigs, littles)
        assert [c.core_id for c in alloc.all_cores] == [0, 1, 2, 3]
