"""Biased-global thread selector tests (Algorithm 1, bottom half)."""

from __future__ import annotations

import pytest

from repro.core.colab import COLABScheduler
from repro.core.selector import BiasedGlobalSelector
from repro.kernel.task import CoreLabel
from repro.model.speedup import OracleSpeedupModel
from tests.conftest import make_machine, make_simple_task


def colab_machine(n_big=2, n_little=2, **selector_kwargs):
    selector = BiasedGlobalSelector(**selector_kwargs)
    machine = make_machine(
        n_big,
        n_little,
        scheduler=COLABScheduler(
            estimator=OracleSpeedupModel(), selector=selector
        ),
    )
    return machine, selector


def queued(machine, core_index, name="q", blocking=0.0, vruntime=0.0,
           label=CoreLabel.ANY, speedup=1.5):
    task = make_simple_task(name)
    task.mark_ready()
    task.blocking_level = blocking
    task.vruntime = vruntime
    task.core_label = label
    task.predicted_speedup = speedup
    machine.cores[core_index].rq.enqueue(task)
    return task


def running_on(machine, core_index, name="r", blocking=0.0, speedup=1.5,
               label=CoreLabel.ANY):
    task = make_simple_task(name)
    task.mark_ready()
    task.blocking_level = blocking
    task.predicted_speedup = speedup
    task.core_label = label
    core = machine.cores[core_index]
    task.mark_running(core.core_id, core.kind.value)
    core.current = task
    core.run_started = 0.0
    return task


class TestLocalSelection:
    def test_max_blocking_wins_locally(self):
        machine, selector = colab_machine()
        queued(machine, 0, "quiet", blocking=0.1)
        loud = queued(machine, 0, "loud", blocking=9.0)
        assert selector.pick(machine, machine.cores[0], 0.0) is loud
        assert selector.decisions["local"] == 1

    def test_starvation_guard_beats_blocking(self):
        machine, selector = colab_machine(starvation_window=1.0)
        starved = queued(machine, 0, "starved", blocking=0.0, vruntime=0.0)
        queued(machine, 0, "hog", blocking=50.0, vruntime=10.0)
        assert selector.pick(machine, machine.cores[0], 0.0) is starved

    def test_blocking_reorders_within_window(self):
        machine, selector = colab_machine(starvation_window=5.0)
        queued(machine, 0, "a", blocking=1.0, vruntime=0.0)
        loud = queued(machine, 0, "b", blocking=9.0, vruntime=3.0)
        assert selector.pick(machine, machine.cores[0], 0.0) is loud

    def test_big_core_prefers_big_label(self):
        machine, selector = colab_machine()
        queued(machine, 0, "bottleneck", blocking=9.0, label=CoreLabel.ANY)
        sensitive = queued(machine, 0, "sensitive", blocking=0.0, label=CoreLabel.BIG)
        assert selector.pick(machine, machine.cores[0], 0.0) is sensitive

    def test_little_core_avoids_big_label(self):
        machine, selector = colab_machine()
        queued(machine, 2, "sensitive", blocking=9.0, label=CoreLabel.BIG)
        other = queued(machine, 2, "other", blocking=0.5, label=CoreLabel.ANY)
        assert selector.pick(machine, machine.cores[2], 0.0) is other

    def test_label_blind_ablation(self):
        machine, selector = colab_machine(label_aware=False)
        bottleneck = queued(machine, 0, "bottleneck", blocking=9.0, label=CoreLabel.ANY)
        queued(machine, 0, "sensitive", blocking=0.0, label=CoreLabel.BIG)
        assert selector.pick(machine, machine.cores[0], 0.0) is bottleneck


class TestBiasedGlobalSearch:
    def test_cluster_before_other_cluster(self):
        machine, selector = colab_machine()
        in_cluster = queued(machine, 1, "same-kind", blocking=1.0)
        queued(machine, 2, "other-kind", blocking=9.0)
        assert selector.pick(machine, machine.cores[0], 0.0) is in_cluster
        assert selector.decisions["cluster"] == 1

    def test_global_steal_when_cluster_empty(self):
        machine, selector = colab_machine()
        remote = queued(machine, 3, "remote", blocking=2.0)
        assert selector.pick(machine, machine.cores[0], 0.0) is remote
        assert selector.decisions["global"] == 1

    def test_little_steals_from_big_rq(self):
        machine, selector = colab_machine()
        task = queued(machine, 0, "spillover", blocking=1.0, label=CoreLabel.ANY)
        assert selector.pick(machine, machine.cores[3], 0.0) is task

    def test_idle_when_nothing_anywhere(self):
        machine, selector = colab_machine()
        assert selector.pick(machine, machine.cores[2], 0.0) is None
        assert selector.decisions["idle"] == 1


class TestLittlePreemption:
    def test_big_core_accelerates_blocking_little_thread(self):
        machine, selector = colab_machine()
        victim = running_on(machine, 2, "victim", blocking=5.0)
        picked = selector.pick(machine, machine.cores[0], 1.0)
        assert picked is victim
        assert selector.decisions["preempt_little"] == 1
        assert machine.cores[2].current is None

    def test_little_core_never_preempts(self):
        machine, selector = colab_machine()
        running_on(machine, 0, "on-big", blocking=5.0)
        assert selector.pick(machine, machine.cores[3], 1.0) is None

    def test_worthless_victim_left_alone(self):
        machine, selector = colab_machine(preempt_min_speedup=2.0)
        running_on(machine, 2, "meek", blocking=0.0, speedup=1.05)
        assert selector.pick(machine, machine.cores[0], 1.0) is None

    def test_high_speedup_victim_taken_even_without_blocking(self):
        machine, selector = colab_machine(preempt_min_speedup=1.5)
        victim = running_on(machine, 2, "fast", blocking=0.0, speedup=2.5)
        assert selector.pick(machine, machine.cores[0], 1.0) is victim

    def test_big_labeled_victim_taken(self):
        machine, selector = colab_machine()
        victim = running_on(
            machine, 2, "lab", blocking=0.0, speedup=1.0, label=CoreLabel.BIG
        )
        assert selector.pick(machine, machine.cores[0], 1.0) is victim

    def test_cooldown_prevents_ping_pong(self):
        machine, selector = colab_machine(preempt_cooldown_ms=5.0)
        victim = running_on(machine, 2, "victim", blocking=5.0)
        assert selector.pick(machine, machine.cores[0], 1.0) is victim
        # Victim resumes on the little core; big asks again too soon.
        victim.mark_running(2, "little")
        machine.cores[2].current = victim
        machine.cores[2].run_started = 1.5
        assert selector.pick(machine, machine.cores[1], 2.0) is None
        # After the cooldown it is fair game again.
        assert selector.pick(machine, machine.cores[1], 7.0) is victim

    def test_most_blocking_victim_chosen(self):
        machine, selector = colab_machine()
        running_on(machine, 2, "mild", blocking=1.0)
        heavy = running_on(machine, 3, "heavy", blocking=9.0)
        assert selector.pick(machine, machine.cores[0], 1.0) is heavy
