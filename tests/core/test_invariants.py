"""Runtime invariants of COLAB's Algorithm 1, checked during real runs."""

from __future__ import annotations

import pytest

from repro.core.colab import COLABScheduler
from repro.core.selector import BiasedGlobalSelector
from repro.model.speedup import OracleSpeedupModel
from repro.workloads.benchmarks import instantiate_benchmark
from repro.workloads.programs import ProgramEnv
from tests.conftest import make_machine


class AuditingSelector(BiasedGlobalSelector):
    """Selector that records the machine state at every idle decision."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.big_idle_with_ready = 0
        self.big_idle_decisions = 0

    def pick(self, machine, core, now):
        task = super().pick(machine, core, now)
        if task is None and core.is_big:
            self.big_idle_decisions += 1
            if any(len(c.rq) > 0 for c in machine.cores):
                self.big_idle_with_ready += 1
        return task


def run_audited(mix_benchmarks, n_big=2, n_little=2, scale=0.2, seed=5):
    selector = AuditingSelector()
    machine = make_machine(
        n_big,
        n_little,
        scheduler=COLABScheduler(
            estimator=OracleSpeedupModel(), selector=selector
        ),
        seed=seed,
    )
    env = ProgramEnv.for_machine(machine, work_scale=scale)
    for app_id, (name, threads) in enumerate(mix_benchmarks):
        machine.add_program(
            instantiate_benchmark(name, env, app_id, n_threads=threads)
        )
    result = machine.run()
    return machine, selector, result


class TestAlgorithmOneInvariants:
    def test_big_cores_never_idle_with_ready_threads(self):
        """'Big cores are allowed to go idle only when there is no ready
        thread left' -- audited at every idle decision."""
        _machine, selector, _result = run_audited(
            [("ferret", 6), ("blackscholes", 4)]
        )
        assert selector.big_idle_decisions > 0  # the audit actually ran
        assert selector.big_idle_with_ready == 0

    def test_invariant_holds_under_oversubscription(self):
        _machine, selector, _result = run_audited(
            [("dedup", 8), ("fluidanimate", 8)], scale=0.1
        )
        assert selector.big_idle_with_ready == 0

    def test_little_cores_never_preempt_big(self):
        machine, selector, _result = run_audited(
            [("fluidanimate", 6), ("lu_cb", 2)]
        )
        # All running-preemptions recorded by the machine must have had
        # little-core victims: the selector only calls preempt_running on
        # little cores, so the counter equals the little-preempt decisions.
        assert (
            machine.scheduler.stats.running_preemptions
            == selector.decisions["preempt_little"]
        )

    def test_selection_is_work_conserving(self):
        """No idle decision while the *local* queue is non-empty."""

        class LocalAudit(BiasedGlobalSelector):
            violations = 0

            def pick(self, machine, core, now):
                had_local = len(core.rq) > 0
                task = super().pick(machine, core, now)
                if task is None and had_local:
                    LocalAudit.violations += 1
                return task

        LocalAudit.violations = 0
        machine = make_machine(
            2, 2,
            scheduler=COLABScheduler(
                estimator=OracleSpeedupModel(), selector=LocalAudit()
            ),
            seed=2,
        )
        env = ProgramEnv.for_machine(machine, work_scale=0.15)
        machine.add_program(instantiate_benchmark("bodytrack", env, 0, n_threads=5))
        machine.add_program(instantiate_benchmark("radix", env, 1, n_threads=4))
        machine.run()
        assert LocalAudit.violations == 0


class TestMotivatingPlacement:
    def test_high_speedup_threads_get_the_big_core(self):
        """In the Figure 1 scenario, γ and α1 (high speedup) should receive
        most of their CPU time on the big core under COLAB."""
        from repro.experiments.motivating import run_motivating_example
        from repro.schedulers import make_scheduler
        from repro.sim.machine import Machine, MachineConfig
        from repro.sim.topology import make_topology
        from repro.experiments import motivating

        machine = Machine(
            make_topology(1, 1),
            make_scheduler("colab"),
            MachineConfig(seed=3),
        )
        for task in motivating._blocking_pair(
            machine, "alpha", 0, motivating.HIGH_SPEEDUP,
            motivating.LOW_SPEEDUP, 20.0, 20.0,
        ):
            machine.add_task(task, app_name="alpha")
        for task in motivating._blocking_pair(
            machine, "beta", 1, motivating.LOW_SPEEDUP,
            motivating.LOW_SPEEDUP, 20.0, 20.0,
        ):
            machine.add_task(task, app_name="beta")

        from repro.kernel.task import Task
        from repro.workloads.actions import Compute

        def gamma():
            yield Compute(30.0)

        machine.add_task(
            Task("gamma", 2, gamma(), motivating.HIGH_SPEEDUP), app_name="gamma"
        )
        machine.run()

        by_name = {t.name: t for t in machine.tasks}

        def big_share(task):
            total = task.sum_exec_runtime
            return task.exec_time_by_kind["big"] / total if total else 0.0

        # The high-speedup threads live mostly on the big core...
        assert big_share(by_name["gamma"]) > 0.5
        assert big_share(by_name["alpha1"]) > 0.5
        # ...while the core-insensitive blocker runs mostly on the little.
        assert big_share(by_name["beta1"]) < 0.5
