"""Multi-factor labeler tests (Section 3.2 labeling rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labeler import LabelerConfig, MultiFactorLabeler
from repro.kernel.task import CoreLabel
from repro.model.speedup import OracleSpeedupModel
from repro.sim.counters import PerformanceCounters
from tests.conftest import (
    FAST_PROFILE,
    NEUTRAL_PROFILE,
    SLOW_PROFILE,
    make_simple_task,
)


def labeler(**kwargs):
    return MultiFactorLabeler(OracleSpeedupModel(), LabelerConfig(**kwargs))


def task_with(speedup=1.5, blocking=0.0, profile=NEUTRAL_PROFILE):
    task = make_simple_task(profile=profile)
    task.predicted_speedup = speedup
    task.blocking_level = blocking
    task.counters = PerformanceCounters(
        profile=profile, rng=np.random.default_rng(0)
    )
    return task


class TestClassify:
    def test_high_speedup_is_big(self):
        assert labeler().classify(task_with(speedup=2.2)) is CoreLabel.BIG

    def test_threshold_boundary_is_big(self):
        config = LabelerConfig()
        task = task_with(speedup=config.speedup_high)
        assert labeler().classify(task) is CoreLabel.BIG

    def test_low_speedup_low_blocking_is_little(self):
        assert labeler().classify(task_with(speedup=1.1)) is CoreLabel.LITTLE

    def test_low_speedup_high_blocking_is_any(self):
        """Non-critical requires BOTH low speedup and low blocking."""
        task = task_with(speedup=1.1, blocking=3.0)
        assert labeler().classify(task) is CoreLabel.ANY

    def test_middle_speedup_is_any(self):
        assert labeler().classify(task_with(speedup=1.6)) is CoreLabel.ANY

    def test_custom_thresholds(self):
        strict = labeler(speedup_high=2.5, speedup_low=1.2)
        assert strict.classify(task_with(speedup=2.2)) is CoreLabel.ANY
        assert strict.classify(task_with(speedup=1.1)) is CoreLabel.LITTLE


class TestLabelPass:
    def test_labels_and_estimates_updated(self):
        machine_tasks = [
            task_with(profile=FAST_PROFILE),
            task_with(profile=SLOW_PROFILE),
        ]
        lab = labeler()
        lab.label(machine_tasks)
        assert machine_tasks[0].core_label is CoreLabel.BIG
        assert machine_tasks[1].core_label is CoreLabel.LITTLE
        assert lab.passes == 1

    def test_done_tasks_keep_old_label(self):
        task = task_with(profile=FAST_PROFILE)
        task.mark_ready()
        task.mark_running(0, "big")
        task.mark_done(1.0)
        lab = labeler()
        lab.label([task])
        assert task.core_label is CoreLabel.ANY  # untouched default

    def test_blocking_updates_flow_into_labels(self):
        task = task_with(profile=SLOW_PROFILE)
        task.caused_wait_window = 5.0
        lab = labeler()
        lab.label([task])
        # The blocking EMA (2.5) exceeds blocking_low, so not LITTLE.
        assert task.core_label is CoreLabel.ANY
