"""Synthetic PMU tests: profiles, speedup function, counter accumulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.counters import (
    COUNTER_TABLE,
    INFORMATIVE_NAMES,
    INSTRUCTIONS_PER_WORK,
    WIDE_VECTOR_SIZE,
    MicroArchProfile,
    PerformanceCounters,
    counter_names,
    profile_from_traits,
    wide_vector,
)
from tests.conftest import FAST_PROFILE, NEUTRAL_PROFILE, SLOW_PROFILE

unit = st.floats(0.0, 1.0)


class TestProfile:
    def test_field_range_validated(self):
        with pytest.raises(SimulationError):
            MicroArchProfile(
                ilp=1.5, branchiness=0, store_pressure=0,
                mem_bound=0, frontend_stall=0, quiesce=0,
            )

    def test_speedup_bounds(self):
        assert 1.0 <= SLOW_PROFILE.speedup() <= 2.9
        assert 1.0 <= FAST_PROFILE.speedup() <= 2.9

    def test_compute_bound_faster_than_memory_bound(self):
        assert FAST_PROFILE.speedup() > SLOW_PROFILE.speedup()

    def test_fast_profile_near_ceiling(self):
        assert FAST_PROFILE.speedup() > 2.4

    def test_slow_profile_near_floor(self):
        assert SLOW_PROFILE.speedup() < 1.25

    @given(unit, unit, unit, unit, unit, unit)
    @settings(max_examples=100, deadline=None)
    def test_speedup_always_in_range(self, a, b, c, d, e, f):
        profile = MicroArchProfile(a, b, c, d, e, f)
        assert 1.0 <= profile.speedup() <= 2.9

    @given(unit, unit)
    @settings(max_examples=50, deadline=None)
    def test_speedup_monotone_in_ilp(self, ilp, mem):
        lower = MicroArchProfile(max(0.0, ilp - 0.2), 0.3, 0.3, mem, 0.2, 0.2)
        higher = MicroArchProfile(min(1.0, ilp + 0.2), 0.3, 0.3, mem, 0.2, 0.2)
        assert higher.speedup() >= lower.speedup() - 1e-12

    def test_profile_from_traits_deterministic_per_rng(self):
        p1 = profile_from_traits(0.5, 0.5, 0.5, np.random.default_rng(7))
        p2 = profile_from_traits(0.5, 0.5, 0.5, np.random.default_rng(7))
        assert p1 == p2

    def test_profile_from_traits_tracks_traits(self):
        rng = np.random.default_rng(0)
        compute = profile_from_traits(0.95, 0.05, 0.1, rng, jitter=0.0)
        memory = profile_from_traits(0.05, 0.95, 0.1, rng, jitter=0.0)
        assert compute.ilp > memory.ilp
        assert memory.mem_bound > compute.mem_bound


class TestCounterAccumulation:
    def make(self, profile=NEUTRAL_PROFILE, seed=0):
        return PerformanceCounters(profile=profile, rng=np.random.default_rng(seed))

    def test_initial_zero(self):
        counters = self.make()
        assert all(v == 0.0 for v in counters.totals.values())
        assert set(counters.totals) == set(INFORMATIVE_NAMES)

    def test_committed_insts_exact(self):
        counters = self.make()
        counters.record_compute(work=2.0, cpu_time=3.0)
        assert counters.totals["commit.committedInsts"] == pytest.approx(
            2.0 * INSTRUCTIONS_PER_WORK
        )

    def test_zero_work_noop(self):
        counters = self.make()
        counters.record_compute(work=0.0, cpu_time=0.0)
        assert counters.totals["commit.committedInsts"] == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            self.make().record_compute(work=-1.0, cpu_time=1.0)

    def test_negative_wait_rejected(self):
        with pytest.raises(SimulationError):
            self.make().record_wait(-0.5)

    def test_wait_accumulates_quiesce_only(self):
        counters = self.make()
        counters.record_wait(5.0)
        assert counters.totals["quiesceCycles"] > 0
        assert counters.totals["commit.committedInsts"] == 0.0

    def test_ilp_drives_regfile_writes(self):
        fast = self.make(FAST_PROFILE, seed=1)
        slow = self.make(SLOW_PROFILE, seed=1)
        fast.record_compute(10.0, 10.0)
        slow.record_compute(10.0, 10.0)
        assert (
            fast.totals["fp_regfile_writes"] > slow.totals["fp_regfile_writes"]
        )

    def test_mem_bound_drives_dcache_tags(self):
        fast = self.make(FAST_PROFILE, seed=1)
        slow = self.make(SLOW_PROFILE, seed=1)
        fast.record_compute(10.0, 10.0)
        slow.record_compute(10.0, 10.0)
        assert (
            slow.totals["dcache.tags.tagsinuse"]
            > fast.totals["dcache.tags.tagsinuse"]
        )

    def test_window_read_and_reset(self):
        counters = self.make()
        counters.record_compute(1.0, 1.0)
        window = counters.read_window(reset=True)
        assert window["commit.committedInsts"] > 0
        assert counters.window["commit.committedInsts"] == 0.0
        # totals survive the reset
        assert counters.totals["commit.committedInsts"] > 0

    def test_window_read_without_reset(self):
        counters = self.make()
        counters.record_compute(1.0, 1.0)
        counters.read_window(reset=False)
        assert counters.window["commit.committedInsts"] > 0

    def test_normalized_divides_by_insts(self):
        counters = self.make()
        counters.record_compute(4.0, 4.0)
        normalized = counters.normalized()
        insts = counters.totals["commit.committedInsts"]
        for name, value in normalized.items():
            assert value == pytest.approx(counters.totals[name] / insts)
        assert "commit.committedInsts" not in normalized

    def test_normalized_empty_is_zero(self):
        normalized = self.make().normalized()
        assert all(v == 0.0 for v in normalized.values())


class TestWideVector:
    def test_shape_and_names(self):
        names = counter_names()
        assert len(names) == WIDE_VECTOR_SIZE
        assert names[: len(INFORMATIVE_NAMES)] == list(INFORMATIVE_NAMES)
        assert len(set(names)) == WIDE_VECTOR_SIZE

    def test_table2_rows_present(self):
        assert len(COUNTER_TABLE) == 7
        assert COUNTER_TABLE[-1].name == "commit.committedInsts"
        letters = [row.index for row in COUNTER_TABLE]
        assert letters == list("ABCDEFG")

    def test_wide_vector_embeds_informative_values(self, rng):
        counters = PerformanceCounters(
            profile=NEUTRAL_PROFILE, rng=np.random.default_rng(0)
        )
        counters.record_compute(5.0, 5.0)
        vector = wide_vector(counters.totals, rng)
        assert vector.shape == (WIDE_VECTOR_SIZE,)
        for i, name in enumerate(INFORMATIVE_NAMES):
            assert vector[i] == pytest.approx(counters.totals[name])

    def test_distractors_nonnegative(self, rng):
        counters = PerformanceCounters(
            profile=NEUTRAL_PROFILE, rng=np.random.default_rng(0)
        )
        counters.record_compute(5.0, 5.0)
        vector = wide_vector(counters.totals, rng)
        assert (vector >= 0).all()

    def test_distractors_scale_with_instructions(self):
        small = {name: 0.0 for name in INFORMATIVE_NAMES}
        small["commit.committedInsts"] = 1e4
        big = dict(small, **{"commit.committedInsts": 1e8})
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        v_small = wide_vector(small, rng_a)
        v_big = wide_vector(big, rng_b)
        assert v_big[len(INFORMATIVE_NAMES):].sum() > v_small[
            len(INFORMATIVE_NAMES):
        ].sum()
