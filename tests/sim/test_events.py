"""Event taxonomy tests."""

from __future__ import annotations

from repro.sim.events import Event, EventKind


class TestOrdering:
    def test_sort_key_time_first(self):
        early = Event(time=1.0, kind=EventKind.LABEL)
        late = Event(time=2.0, kind=EventKind.SEGMENT_DONE)
        assert early < late

    def test_kind_priority_breaks_time_ties(self):
        segment = Event(time=1.0, kind=EventKind.SEGMENT_DONE)
        wakeup = Event(time=1.0, kind=EventKind.WAKEUP)
        expiry = Event(time=1.0, kind=EventKind.SLICE_EXPIRY)
        label = Event(time=1.0, kind=EventKind.LABEL)
        assert segment < wakeup < expiry < label

    def test_sequence_breaks_full_ties(self):
        first = Event(time=1.0, kind=EventKind.TICK, seq=1)
        second = Event(time=1.0, kind=EventKind.TICK, seq=2)
        assert first < second

    def test_priority_values_documented_order(self):
        assert EventKind.SEGMENT_DONE < EventKind.WAKEUP
        assert EventKind.WAKEUP < EventKind.SLICE_EXPIRY
        assert EventKind.SLICE_EXPIRY < EventKind.TICK
        assert EventKind.TICK < EventKind.LABEL
        assert EventKind.LABEL < EventKind.CALLBACK

    def test_defaults(self):
        event = Event(time=0.0, kind=EventKind.CALLBACK)
        assert event.core_id == -1
        assert event.version == -1
        assert event.payload is None
