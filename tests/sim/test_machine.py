"""Machine execution-model tests: the heart of the simulator substrate."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.kernel.sync import Barrier, Mutex, Pipe
from repro.kernel.task import Task
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import (
    BarrierWait,
    Compute,
    LockAcquire,
    LockRelease,
    PipeGet,
    PipePut,
    Sleep,
    Spawn,
)
from tests.conftest import (
    FAST_PROFILE,
    NEUTRAL_PROFILE,
    SLOW_PROFILE,
    make_machine,
    make_simple_task,
)

#: Config that zeroes the scheduling-cost model for exact-time assertions.
FREE = dict(context_switch_cost=0.0, migration_cost=0.0)


class TestSingleTask:
    def test_compute_on_big_core_is_exact(self):
        machine = make_machine(1, 0, **FREE)
        machine.add_task(make_simple_task(work=10.0), app_name="solo")
        result = machine.run()
        assert result.makespan == pytest.approx(10.0)
        assert result.app_turnaround == {0: pytest.approx(10.0)}

    def test_compute_on_little_core_scaled_by_speedup(self):
        machine = make_machine(0, 1, **FREE)
        task = make_simple_task(work=10.0, speedup=2.0)
        machine.add_task(task)
        result = machine.run()
        assert result.makespan == pytest.approx(20.0)

    def test_work_done_accounting(self):
        machine = make_machine(1, 0, **FREE)
        task = make_simple_task(work=7.5)
        machine.add_task(task)
        machine.run()
        assert task.work_done == pytest.approx(7.5)
        assert task.sum_exec_runtime == pytest.approx(7.5)
        assert task.exec_time_by_kind["big"] == pytest.approx(7.5)
        assert task.exec_time_by_kind["little"] == 0.0

    def test_multi_segment_task(self):
        machine = make_machine(1, 0, **FREE)
        machine.add_task(make_simple_task(work=9.0, chunks=3))
        result = machine.run()
        assert result.makespan == pytest.approx(9.0)

    def test_empty_machine_rejected(self):
        machine = make_machine(1, 0)
        with pytest.raises(SimulationError, match="no tasks"):
            machine.run()

    def test_cannot_run_twice(self):
        machine = make_machine(1, 0)
        machine.add_task(make_simple_task(work=1.0))
        machine.run()
        with pytest.raises(SimulationError):
            machine.run()

    def test_cannot_add_after_run(self):
        machine = make_machine(1, 0)
        machine.add_task(make_simple_task(work=1.0))
        machine.run()
        with pytest.raises(SimulationError):
            machine.add_task(make_simple_task(work=1.0))


class TestTimeSharing:
    def test_two_tasks_one_core_share_time(self):
        machine = make_machine(1, 0, **FREE)
        a = make_simple_task("a", work=10.0)
        b = make_simple_task("b", work=10.0)
        machine.add_task(a, app_name="a")
        machine.add_task(b, app_name="b")
        result = machine.run()
        assert result.makespan == pytest.approx(20.0)
        # CFS interleaves them: neither finishes only at the very start.
        assert min(a.finish_time, b.finish_time) > 10.0

    def test_two_tasks_two_cores_run_parallel(self):
        machine = make_machine(2, 0, **FREE)
        machine.add_task(make_simple_task("a", work=10.0), app_name="a")
        machine.add_task(make_simple_task("b", work=10.0), app_name="b")
        result = machine.run()
        assert result.makespan == pytest.approx(10.0)

    def test_slice_expiry_rotates_tasks(self):
        machine = make_machine(1, 0, **FREE)
        a = make_simple_task("a", work=20.0)
        b = make_simple_task("b", work=20.0)
        machine.add_task(a)
        machine.add_task(b)
        machine.run()
        # Fair sharing: equal vruntime at the end (within one slice).
        assert abs(a.vruntime - b.vruntime) <= 6.0

    def test_context_switch_cost_charged(self):
        free = make_machine(1, 0, **FREE)
        free.add_task(make_simple_task("a", work=10.0))
        free.add_task(make_simple_task("b", work=10.0))
        base = free.run().makespan

        costly = make_machine(1, 0, context_switch_cost=0.1, migration_cost=0.0)
        costly.add_task(make_simple_task("a", work=10.0))
        costly.add_task(make_simple_task("b", work=10.0))
        slower = costly.run().makespan
        assert slower > base

    def test_migration_cost_charged_on_core_change(self):
        machine = make_machine(2, 0, context_switch_cost=0.0, migration_cost=0.5)
        task = make_simple_task(work=5.0)
        machine.add_task(task)
        machine.run()
        assert task.migrations == 0  # single task never migrates


class TestBlockingAndWaking:
    def test_mutex_serialises_critical_sections(self):
        machine = make_machine(2, 0, **FREE)
        lock = Mutex(machine.futexes)

        def worker():
            yield LockAcquire(lock)
            yield Compute(5.0)
            yield LockRelease(lock)

        a = Task("a", 0, worker(), NEUTRAL_PROFILE)
        b = Task("b", 1, worker(), NEUTRAL_PROFILE)
        machine.add_task(a, "a")
        machine.add_task(b, "b")
        result = machine.run()
        # 2 cores but the lock serialises: 10ms total.
        assert result.makespan == pytest.approx(10.0)

    def test_blocked_waiter_charges_holder(self):
        machine = make_machine(1, 0, **FREE)
        lock = Mutex(machine.futexes)

        def holder():
            yield LockAcquire(lock)
            yield Compute(4.0)
            yield LockRelease(lock)
            yield Compute(2.0)

        def waiter():
            yield Compute(1.0)
            yield LockAcquire(lock)
            yield LockRelease(lock)

        h = Task("h", 0, holder(), NEUTRAL_PROFILE)
        w = Task("w", 1, waiter(), NEUTRAL_PROFILE)
        machine.add_task(h)
        machine.add_task(w)
        machine.run()
        assert h.caused_wait_time > 0
        assert w.own_wait_time > 0

    def test_barrier_joins_all_threads(self):
        machine = make_machine(2, 0, **FREE)
        barrier = Barrier(machine.futexes, parties=2)

        def worker(work):
            yield Compute(work)
            yield BarrierWait(barrier)
            yield Compute(1.0)

        fast = Task("fast", 0, worker(1.0), NEUTRAL_PROFILE)
        slow = Task("slow", 0, worker(9.0), NEUTRAL_PROFILE)
        machine.add_task(fast)
        machine.add_task(slow)
        result = machine.run()
        assert result.makespan == pytest.approx(10.0)
        assert fast.own_wait_time == pytest.approx(8.0)

    def test_pipe_pipeline_flows(self):
        machine = make_machine(2, 0, **FREE)
        pipe = Pipe(machine.futexes, capacity=2)

        def producer():
            for i in range(5):
                yield Compute(1.0)
                yield PipePut(pipe, i)
            yield PipePut(pipe, None)

        def consumer():
            got = []
            while True:
                item = yield PipeGet(pipe)
                if item is None:
                    break
                got.append(item)
                yield Compute(1.0)
            assert got == [0, 1, 2, 3, 4]

        machine.add_task(Task("prod", 0, producer(), NEUTRAL_PROFILE))
        machine.add_task(Task("cons", 0, consumer(), NEUTRAL_PROFILE))
        result = machine.run()
        # Stages overlap: ~1ms pipeline fill + 5ms steady state.
        assert result.makespan == pytest.approx(6.0, abs=0.5)

    def test_sleep_blocks_for_duration(self):
        machine = make_machine(1, 0, **FREE)

        def sleeper():
            yield Compute(1.0)
            yield Sleep(5.0)
            yield Compute(1.0)

        machine.add_task(Task("s", 0, sleeper(), NEUTRAL_PROFILE))
        result = machine.run()
        assert result.makespan == pytest.approx(7.0)

    def test_sleeping_core_runs_other_tasks(self):
        machine = make_machine(1, 0, **FREE)

        def sleeper():
            yield Sleep(5.0)

        machine.add_task(Task("s", 0, sleeper(), NEUTRAL_PROFILE))
        machine.add_task(make_simple_task("busy", work=5.0, app_id=1))
        result = machine.run()
        assert result.makespan == pytest.approx(5.0)

    def test_deadlock_detected(self):
        machine = make_machine(1, 0, **FREE)
        lock = Mutex(machine.futexes)

        def holder_never_releases():
            yield LockAcquire(lock)
            yield Compute(1.0)

        def waits_forever():
            yield LockAcquire(lock)

        machine.add_task(Task("h", 0, holder_never_releases(), NEUTRAL_PROFILE))
        machine.add_task(Task("w", 0, waits_forever(), NEUTRAL_PROFILE))
        with pytest.raises(SimulationError, match="never finished"):
            machine.run()


class TestSpawn:
    def test_spawned_task_runs(self):
        machine = make_machine(2, 0, **FREE)
        child = make_simple_task("child", work=3.0, app_id=0)

        def parent():
            yield Compute(1.0)
            yield Spawn(child)
            yield Compute(1.0)

        machine.add_task(Task("parent", 0, parent(), NEUTRAL_PROFILE))
        result = machine.run()
        assert child.is_done
        assert len(machine.tasks) == 2
        assert result.makespan == pytest.approx(4.0)

    def test_spawned_task_gets_counters(self):
        machine = make_machine(1, 0, **FREE)
        child = make_simple_task("child", work=1.0)

        def parent():
            yield Spawn(child)
            yield Compute(1.0)

        machine.add_task(Task("parent", 0, parent(), NEUTRAL_PROFILE))
        machine.run()
        assert child.counters is not None
        assert child.counters.totals["commit.committedInsts"] > 0


class TestAsymmetry:
    def test_fast_profile_prefers_speed_difference(self):
        """The same work takes visibly longer on a little-only machine."""
        big = make_machine(1, 0, **FREE)
        big.add_task(make_simple_task(work=10.0, profile=FAST_PROFILE))
        t_big = big.run().makespan

        little = make_machine(0, 1, **FREE)
        little.add_task(make_simple_task(work=10.0, profile=FAST_PROFILE))
        t_little = little.run().makespan
        assert t_little == pytest.approx(t_big * FAST_PROFILE.speedup())

    def test_slow_profile_insensitive(self):
        little = make_machine(0, 1, **FREE)
        task = make_simple_task(work=10.0, profile=SLOW_PROFILE)
        little.add_task(task)
        assert little.run().makespan < 10.0 * 1.3


class TestDeterminismAndResults:
    def _mix_machine(self, seed):
        from repro.workloads.mixes import MIXES
        from repro.workloads.programs import ProgramEnv

        machine = make_machine(1, 1, seed=seed)
        env = ProgramEnv.for_machine(machine, work_scale=0.05)
        for inst in MIXES["Sync-1"].instantiate(env):
            machine.add_program(inst)
        return machine

    def test_same_seed_same_result(self):
        r1 = self._mix_machine(7).run()
        r2 = self._mix_machine(7).run()
        assert r1.makespan == r2.makespan
        assert r1.app_turnaround == r2.app_turnaround
        assert r1.total_context_switches == r2.total_context_switches

    def test_different_seed_different_result(self):
        r1 = self._mix_machine(7).run()
        r2 = self._mix_machine(8).run()
        assert r1.makespan != r2.makespan

    def test_trace_records_dispatches(self):
        machine = make_machine(1, 0, trace=True)
        machine.add_task(make_simple_task(work=2.0))
        result = machine.run()
        assert result.trace
        time, core_id, tid = result.trace[0]
        assert time == 0.0
        assert core_id == 0

    def test_turnaround_of_requires_unique_name(self):
        machine = make_machine(1, 0, **FREE)
        machine.add_task(make_simple_task("a", work=1.0, app_id=0), "app")
        result = machine.run()
        assert result.turnaround_of("app") == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            result.turnaround_of("missing")

    def test_busy_time_bounded_by_makespan(self):
        machine = make_machine(2, 2)
        for i in range(6):
            machine.add_task(make_simple_task(f"t{i}", work=5.0, app_id=i))
        result = machine.run()
        for busy in result.core_busy_time.values():
            assert busy <= result.makespan + 1e-6

    def test_all_work_conserved_across_cores(self):
        machine = make_machine(2, 2, **FREE)
        tasks = [make_simple_task(f"t{i}", work=4.0, app_id=i) for i in range(8)]
        for task in tasks:
            machine.add_task(task)
        machine.run()
        for task in tasks:
            assert task.work_done == pytest.approx(4.0, rel=1e-6)
