"""Energy model tests (extension)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.core import CoreKind
from repro.sim.energy import EnergyReport, PowerModel, energy_of
from repro.sim.topology import make_topology
from tests.conftest import make_machine, make_simple_task

FREE = dict(context_switch_cost=0.0, migration_cost=0.0)


def run_simple(n_big=1, n_little=1, work=10.0):
    machine = make_machine(n_big, n_little, **FREE)
    machine.add_task(make_simple_task(work=work, speedup=2.0))
    return machine.topology, machine.run()


class TestPowerModel:
    def test_defaults_ordered(self):
        model = PowerModel()
        assert model.big_busy_w > model.little_busy_w
        assert model.busy_power(CoreKind.BIG) == model.big_busy_w
        assert model.idle_power(CoreKind.LITTLE) == model.little_idle_w

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            PowerModel(big_busy_w=-1.0)

    def test_idle_above_busy_rejected(self):
        with pytest.raises(SimulationError):
            PowerModel(big_busy_w=0.1, big_idle_w=0.5)


class TestEnergyOf:
    def test_single_big_core_exact(self):
        topology, result = run_simple(n_big=1, n_little=0, work=10.0)
        model = PowerModel(
            big_busy_w=2.0, big_idle_w=0.0, migration_nj=0.0
        )
        report = energy_of(result, topology, model)
        # 10 ms at 2 W = 0.02 J, all on the big cluster.
        assert report.big_j == pytest.approx(0.02)
        assert report.little_j == 0.0
        assert report.total_j == pytest.approx(0.02)

    def test_idle_core_costs_idle_power(self):
        topology, result = run_simple(n_big=1, n_little=1, work=10.0)
        model = PowerModel(
            big_busy_w=1.0, big_idle_w=0.0,
            little_busy_w=1.0, little_idle_w=0.5,
            migration_nj=0.0,
        )
        report = energy_of(result, topology, model)
        # Task ran on the big core; the little core idled the whole run.
        assert report.idle_j == pytest.approx(0.01 * 0.5)

    def test_edp_scales_with_makespan(self):
        topology, result = run_simple(work=10.0)
        report = energy_of(result, topology)
        assert report.edp == pytest.approx(
            report.total_j * result.makespan / 1000.0
        )

    def test_migrations_charged(self):
        topology, result = run_simple()
        cheap = energy_of(result, topology, PowerModel(migration_nj=0.0))
        base = energy_of(result, topology)
        assert base.migration_j >= cheap.migration_j

    def test_topology_mismatch_rejected(self):
        topology, result = run_simple(n_big=1, n_little=1)
        with pytest.raises(SimulationError):
            energy_of(result, make_topology(4, 4))

    def test_render_mentions_units(self):
        topology, result = run_simple()
        text = energy_of(result, topology).render()
        assert " J" in text
        assert "EDP" in text

    def test_little_only_cheaper_but_slower(self):
        """The classic AMP energy/performance trade-off appears."""
        big_topo, big_result = run_simple(n_big=1, n_little=0, work=20.0)
        little_topo, little_result = run_simple(n_big=0, n_little=1, work=20.0)
        big_report = energy_of(big_result, big_topo)
        little_report = energy_of(little_result, little_topo)
        assert little_result.makespan > big_result.makespan
        assert little_report.total_j < big_report.total_j
