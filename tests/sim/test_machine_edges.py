"""Machine error paths and scheduler-contract enforcement."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError, SimulationError
from repro.kernel.task import Task
from repro.schedulers.cfs import CFSScheduler
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.actions import Compute
from tests.conftest import NEUTRAL_PROFILE, make_machine, make_simple_task


class TestPreemptAndMigrateAPI:
    def test_preempt_running_on_idle_core_rejected(self):
        machine = make_machine(1, 1)
        with pytest.raises(SchedulerError):
            machine.preempt_running(machine.cores[0], 0.0)

    def test_migrate_unqueued_task_rejected(self):
        machine = make_machine(1, 1)
        task = make_simple_task()
        task.mark_ready()
        with pytest.raises(SchedulerError):
            machine.migrate_queued(task, machine.cores[0], 0.0)

    def test_migrate_queued_moves_between_queues(self):
        machine = make_machine(1, 1)
        task = make_simple_task()
        task.mark_ready()
        machine.cores[0].rq.enqueue(task)
        machine.migrate_queued(task, machine.cores[1], 0.0)
        assert task.rq_core_id == 1
        assert len(machine.cores[0].rq) == 0

    def test_request_dispatch_only_marks_idle_cores(self):
        machine = make_machine(1, 0)
        core = machine.cores[0]
        machine.request_dispatch(core)
        assert core.core_id in machine._dispatch_pending
        machine._dispatch_pending.clear()
        core.current = make_simple_task()
        machine.request_dispatch(core)
        assert core.core_id not in machine._dispatch_pending


class TestSchedulerContract:
    def test_allocating_outside_affinity_is_caught(self):
        class RogueScheduler(CFSScheduler):
            name = "rogue"

            def select_core(self, task, now):
                return self._require_machine().cores[0]  # ignores affinity

        machine = make_machine(1, 1, scheduler=RogueScheduler())
        task = make_simple_task()
        task.affinity = frozenset({1})
        machine.add_task(task)
        with pytest.raises(SchedulerError, match="outside affinity"):
            machine.run()

    def test_zero_slice_is_caught(self):
        class ZeroSlice(CFSScheduler):
            name = "zeroslice"

            def slice_for(self, task, core):
                return 0.0

        machine = make_machine(1, 0, scheduler=ZeroSlice())
        machine.add_task(make_simple_task(work=1.0))
        with pytest.raises(SchedulerError, match="slice"):
            machine.run()

    def test_scheduler_detached_hooks_rejected(self):
        sched = CFSScheduler()
        with pytest.raises(SchedulerError):
            sched.allowed_cores(make_simple_task())


class TestActionEdgeCases:
    def test_zero_work_segments_are_skipped(self):
        machine = make_machine(1, 0, context_switch_cost=0.0, migration_cost=0.0)

        def zero_then_real():
            yield Compute(0.0)
            yield Compute(0.0)
            yield Compute(2.0)

        machine.add_task(Task("z", 0, zero_then_real(), NEUTRAL_PROFILE))
        result = machine.run()
        assert result.makespan == pytest.approx(2.0)

    def test_action_livelock_detected(self):
        machine = make_machine(1, 0, max_actions_per_advance=50)

        def spins_forever():
            while True:
                yield Compute(0.0)

        machine.add_task(Task("spin", 0, spins_forever(), NEUTRAL_PROFILE))
        with pytest.raises(SimulationError, match="livelock"):
            machine.run()

    def test_unknown_action_rejected(self):
        machine = make_machine(1, 0)

        def bad():
            yield "not-an-action"

        machine.add_task(Task("bad", 0, bad(), NEUTRAL_PROFILE))
        with pytest.raises(SimulationError, match="unknown action"):
            machine.run()

    def test_generator_exception_propagates(self):
        machine = make_machine(1, 0)

        def raises():
            yield Compute(0.5)
            raise ValueError("user workload bug")

        machine.add_task(Task("boom", 0, raises(), NEUTRAL_PROFILE))
        with pytest.raises(ValueError, match="user workload bug"):
            machine.run()


class TestRunUntil:
    def test_truncated_run_reports_unfinished_tasks(self):
        machine = make_machine(1, 0)
        machine.add_task(make_simple_task(work=100.0))
        with pytest.raises(SimulationError, match="never finished"):
            machine.run(until=1.0)


class TestPenaltyModel:
    def test_penalty_consumed_before_work(self):
        machine = Machine(
            make_topology(1, 0),
            CFSScheduler(),
            MachineConfig(seed=0, context_switch_cost=1.0, migration_cost=0.0),
        )
        task = make_simple_task(work=5.0)
        machine.add_task(task)
        result = machine.run()
        # One context switch (idle -> task): 1 ms penalty + 5 ms work.
        assert result.makespan == pytest.approx(6.0)
        assert task.work_done == pytest.approx(5.0)

    def test_migration_penalty_on_cross_core_move(self):
        machine = Machine(
            make_topology(2, 0),
            CFSScheduler(),
            MachineConfig(seed=0, context_switch_cost=0.0, migration_cost=0.5),
        )
        # Three equal tasks on two cores force at least one migration-free
        # schedule; just assert accounting stays consistent.
        tasks = [make_simple_task(f"t{i}", work=3.0, app_id=i) for i in range(3)]
        for task in tasks:
            machine.add_task(task)
        result = machine.run()
        migrated = sum(t.migrations for t in tasks)
        assert result.makespan >= 4.5  # 9 work over 2 cores
        assert migrated == result.total_migrations
