"""Unit coverage for the single-run hot-path machinery.

The hot path (``MachineConfig(hotpath=True)``, the default) is only
allowed to change wall-clock cost: stale-event suppression, the engine's
fast-discard hook, the per-core event pool, the batched counter noise and
the memoized speedup predictions must all leave every observable outcome
bit-identical to the reference path (``hotpath=False``).  These tests pin
the mechanism-level contracts; end-to-end parity is fuzzed in
``tests/test_fuzz_machine.py`` and benchmarked in
``benchmarks/bench_run_hotpath.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernel.task import reset_tid_counter
from repro.model.speedup import OracleSpeedupModel, PredictionCache
from repro.schedulers import make_scheduler
from repro.sim.counters import PerformanceCounters
from repro.sim.digest import run_digest
from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from tests.conftest import NEUTRAL_PROFILE, make_machine, make_simple_task


# ----------------------------------------------------------------------
# Engine: reference heap layout and the fast-discard hook
# ----------------------------------------------------------------------
class TestReferenceHeap:
    def test_reference_heap_stores_events(self):
        engine = Engine(hotpath=False)
        engine.push(Event(time=2.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        assert all(isinstance(entry, Event) for entry in engine._heap)

    def test_hot_heap_stores_ordering_tuples(self):
        engine = Engine(hotpath=True)
        event = engine.push(Event(time=1.5, kind=EventKind.TICK))
        assert engine._heap[0] == (1.5, EventKind.TICK, event.seq, event)

    def test_both_layouts_process_same_order(self):
        def drain(hotpath: bool) -> list[tuple[float, EventKind]]:
            engine = Engine(hotpath=hotpath)
            seen: list[tuple[float, EventKind]] = []
            for kind in (EventKind.TICK, EventKind.CALLBACK):
                engine.register(kind, lambda ev: seen.append((ev.time, ev.kind)))
            engine.push(Event(time=2.0, kind=EventKind.TICK))
            engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
            engine.push(Event(time=1.0, kind=EventKind.TICK))
            engine.run()
            return seen

        assert drain(True) == drain(False)


class TestFastDiscard:
    def make_engine(self, hotpath: bool = True) -> Engine:
        engine = Engine(hotpath=hotpath)
        engine.register(EventKind.SLICE_EXPIRY, lambda ev: None)
        return engine

    def test_discarded_event_skips_clock_and_processed(self):
        engine = self.make_engine()
        engine.discard = lambda ev: True
        engine.push(Event(time=5.0, kind=EventKind.SLICE_EXPIRY))
        returned = engine.step()
        assert returned is not None
        assert engine.discarded == 1
        assert engine.processed == 0
        assert engine.now == 0.0  # clock did not advance

    def test_discarded_event_skips_sanitizer(self):
        class Recorder:
            seen = 0

            def on_event(self, event, now):
                self.seen += 1

        engine = self.make_engine()
        engine.sanitizer = Recorder()
        engine.discard = lambda ev: True
        engine.push(Event(time=1.0, kind=EventKind.SLICE_EXPIRY))
        engine.step()
        assert engine.sanitizer.seen == 0

    def test_non_matching_event_processed_normally(self):
        engine = self.make_engine()
        engine.discard = lambda ev: False
        engine.push(Event(time=1.0, kind=EventKind.SLICE_EXPIRY))
        engine.step()
        assert engine.discarded == 0
        assert engine.processed == 1
        assert engine.now == 1.0

    def test_past_event_guard_fires_before_discard(self):
        engine = self.make_engine()
        engine.discard = lambda ev: True
        engine.push(Event(time=1.0, kind=EventKind.SLICE_EXPIRY))
        engine.step()  # returns the discarded event, but now stays 0.0
        engine.now = 5.0  # simulate later clock
        engine.push(Event(time=6.0, kind=EventKind.SLICE_EXPIRY))
        engine._heap.clear()
        engine._hot = True
        stale = Event(time=2.0, kind=EventKind.SLICE_EXPIRY, seq=99)
        import heapq

        heapq.heappush(engine._heap, (stale.time, stale.kind, stale.seq, stale))
        with pytest.raises(SimulationError):
            engine.step()


# ----------------------------------------------------------------------
# Machine: suppression accounting and the per-core event pool
# ----------------------------------------------------------------------
class TestSuppressionAndPool:
    def run_machine(self, hotpath: bool) -> Machine:
        machine = make_machine(n_big=1, n_little=1, hotpath=hotpath)
        for i in range(4):
            machine.add_task(make_simple_task(f"t{i}", work=8.0, chunks=4))
        machine.run()
        return machine

    def test_hot_run_suppresses_and_discards(self):
        machine = self.run_machine(hotpath=True)
        assert machine._suppressed > 0
        assert machine.engine.discarded > 0

    def test_reference_run_does_neither(self):
        machine = self.run_machine(hotpath=False)
        assert machine._suppressed == 0
        assert machine.engine.discarded == 0
        assert machine.engine.discard is None
        assert machine.engine.recycle is None
        assert all(not core.event_pool for core in machine.cores)

    def test_pool_only_holds_versioned_timers_for_own_core(self):
        machine = self.run_machine(hotpath=True)
        for core in machine.cores:
            assert len(core.event_pool) <= 8
            for event in core.event_pool:
                assert event.version >= 0
                assert event.core_id == core.core_id

    def test_metrics_expose_hotpath_counters(self):
        from repro.obs.context import ObsConfig

        machine = make_machine(
            n_big=1, n_little=1, hotpath=True, obs=ObsConfig(metrics=True)
        )
        for i in range(4):
            machine.add_task(make_simple_task(f"t{i}", work=8.0, chunks=4))
        result = machine.run()
        counters = result.metrics["counters"]
        assert counters["engine.events.suppressed"] == machine._suppressed
        assert counters["engine.events.discarded"] == machine.engine.discarded
        assert counters["engine.events.processed"] == machine.engine.processed


# ----------------------------------------------------------------------
# Batched counter noise
# ----------------------------------------------------------------------
class TestBatchedCounterNoise:
    def test_hot_and_reference_counters_identical(self):
        def accumulate(hotpath: bool) -> dict[str, float]:
            counters = PerformanceCounters(
                profile=NEUTRAL_PROFILE,
                rng=np.random.default_rng(7),
                hotpath=hotpath,
            )
            for _ in range(3):
                counters.record_compute(work=1.5, cpu_time=1.0)
            counters.record_wait(0.5)
            return counters.totals

        assert accumulate(True) == accumulate(False)


# ----------------------------------------------------------------------
# PredictionCache
# ----------------------------------------------------------------------
class TestPredictionCache:
    def test_get_put_and_stats(self):
        cache = PredictionCache()
        assert cache.get(1, True) is None
        assert cache.misses == 1
        assert cache.put(1, True, 1.5) == 1.5
        assert cache.get(1, True) == 1.5
        assert cache.hits == 1
        # Big/little entries are distinct.
        assert cache.get(1, False) is None

    def test_bump_invalidates_and_counts_generations(self):
        cache = PredictionCache()
        cache.put(1, True, 1.5)
        generation = cache.generation
        cache.bump()
        assert cache.generation == generation + 1
        assert cache.get(1, True) is None

    def test_colab_cache_disabled_on_reference_path(self):
        def build(hotpath: bool) -> Machine:
            scheduler = make_scheduler(
                "colab", estimator=OracleSpeedupModel(noise_std=0.0, seed=0)
            )
            machine = Machine(
                make_topology(1, 1),
                scheduler,
                MachineConfig(seed=0, hotpath=hotpath),
            )
            machine.add_task(make_simple_task("t0", work=30.0, chunks=3))
            machine.add_task(make_simple_task("t1", work=30.0, chunks=3))
            machine.run()
            return machine

        hot = build(True)
        assert hot.scheduler._pred_cache_on
        assert (
            hot.scheduler._pred_cache.hits + hot.scheduler._pred_cache.misses > 0
        )
        ref = build(False)
        assert not ref.scheduler._pred_cache_on
        assert ref.scheduler._pred_cache.hits == 0
        assert ref.scheduler._pred_cache.misses == 0


# ----------------------------------------------------------------------
# Speedup memo
# ----------------------------------------------------------------------
class TestSpeedupMemo:
    def test_machine_primes_memo_only_on_hot_path(self):
        hot = make_machine(hotpath=True)
        task = make_simple_task("hot", work=1.0)
        hot.add_task(task)
        assert task._profile_speedup == task.profile.speedup()

        ref = make_machine(hotpath=False)
        task = make_simple_task("ref", work=1.0)
        ref.add_task(task)
        assert task._profile_speedup is None
        # Unprimed tasks still answer correctly, recomputing per call.
        assert task.true_speedup() == task.profile.speedup()
        assert task._profile_speedup is None


# ----------------------------------------------------------------------
# End-to-end digest parity (deterministic spot check)
# ----------------------------------------------------------------------
class TestDigestParity:
    @pytest.mark.parametrize("name", ["linux", "gts", "wash", "colab"])
    def test_hotpath_digest_matches_reference(self, name):
        def digest(hotpath: bool) -> str:
            reset_tid_counter()
            if name in ("wash", "colab"):
                scheduler = make_scheduler(
                    name, estimator=OracleSpeedupModel(noise_std=0.0, seed=3)
                )
            else:
                scheduler = make_scheduler(name)
            machine = Machine(
                make_topology(2, 2),
                scheduler,
                MachineConfig(seed=3, hotpath=hotpath),
            )
            for i in range(6):
                machine.add_task(
                    make_simple_task(f"t{i}", work=20.0, chunks=5, app_id=i % 2)
                )
            return run_digest(machine.run())

        assert digest(True) == digest(False)
