"""Event-loop tests: ordering, determinism, causality, limits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind


def collecting_engine():
    engine = Engine()
    seen = []
    for kind in EventKind:
        engine.register(kind, lambda ev: seen.append((ev.time, ev.kind)))
    return engine, seen


class TestOrdering:
    def test_time_order(self):
        engine, seen = collecting_engine()
        engine.push(Event(time=3.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=2.0, kind=EventKind.CALLBACK))
        engine.run()
        assert [t for t, _ in seen] == [1.0, 2.0, 3.0]

    def test_same_time_kind_priority(self):
        engine, seen = collecting_engine()
        engine.push(Event(time=1.0, kind=EventKind.LABEL))
        engine.push(Event(time=1.0, kind=EventKind.SEGMENT_DONE))
        engine.push(Event(time=1.0, kind=EventKind.SLICE_EXPIRY))
        engine.push(Event(time=1.0, kind=EventKind.WAKEUP))
        engine.run()
        assert [k for _, k in seen] == [
            EventKind.SEGMENT_DONE,
            EventKind.WAKEUP,
            EventKind.SLICE_EXPIRY,
            EventKind.LABEL,
        ]

    def test_same_time_same_kind_fifo(self):
        engine = Engine()
        order = []
        engine.register(EventKind.CALLBACK, lambda ev: order.append(ev.payload))
        for i in range(10):
            engine.push(Event(time=1.0, kind=EventKind.CALLBACK, payload=i))
        engine.run()
        assert order == list(range(10))

    def test_now_advances(self):
        engine = Engine()
        times = []
        engine.register(EventKind.CALLBACK, lambda ev: times.append(engine.now))
        engine.push(Event(time=2.5, kind=EventKind.CALLBACK))
        engine.run()
        assert times == [2.5]
        assert engine.now == 2.5


class TestCausality:
    def test_push_into_past_rejected(self):
        engine, _seen = collecting_engine()
        engine.push(Event(time=5.0, kind=EventKind.CALLBACK))
        engine.run()
        with pytest.raises(SimulationError):
            engine.push(Event(time=1.0, kind=EventKind.CALLBACK))

    def test_push_at_current_time_allowed(self):
        engine = Engine()
        pushed = []

        def handler(ev):
            if ev.payload == "first":
                engine.push(
                    Event(time=engine.now, kind=EventKind.CALLBACK, payload="second")
                )
            pushed.append(ev.payload)

        engine.register(EventKind.CALLBACK, handler)
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK, payload="first"))
        engine.run()
        assert pushed == ["first", "second"]


class TestControls:
    def test_run_until_leaves_future_events(self):
        engine, seen = collecting_engine()
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=10.0, kind=EventKind.CALLBACK))
        engine.run(until=5.0)
        assert len(seen) == 1
        assert engine.pending() == 1

    def test_stop_exits_loop(self):
        engine = Engine()
        seen = []

        def handler(ev):
            seen.append(ev.time)
            engine.stop()

        engine.register(EventKind.CALLBACK, handler)
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=2.0, kind=EventKind.CALLBACK))
        engine.run()
        assert seen == [1.0]
        assert engine.pending() == 1

    def test_step_returns_event_or_none(self):
        engine, _ = collecting_engine()
        assert engine.step() is None
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        event = engine.step()
        assert event is not None
        assert event.time == 1.0

    def test_unregistered_kind_raises(self):
        engine = Engine()
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_max_events_guard(self):
        engine = Engine(max_events=10)

        def reschedule(ev):
            engine.push(Event(time=engine.now + 1, kind=EventKind.CALLBACK))

        engine.register(EventKind.CALLBACK, reschedule)
        engine.push(Event(time=0.0, kind=EventKind.CALLBACK))
        with pytest.raises(SimulationError, match="max_events"):
            engine.run()

    def test_processed_counter(self):
        engine, _ = collecting_engine()
        for i in range(5):
            engine.push(Event(time=float(i), kind=EventKind.CALLBACK))
        engine.run()
        assert engine.processed == 5


class TestSanitizerOrdering:
    """The engine's past-event guard must fire before the sanitizer sees
    the event (regression: schedsan used to observe -- and advance its
    monotonicity clock on -- events the engine then refused)."""

    def _engine_with_sanitizer(self):
        from repro.sanitize.schedsan import SchedSanitizer

        engine, _seen = collecting_engine()
        engine.sanitizer = SchedSanitizer()
        return engine

    def test_corrupted_heap_raises_simulation_error(self):
        import heapq

        engine = self._engine_with_sanitizer()
        engine.push(Event(time=5.0, kind=EventKind.CALLBACK))
        engine.step()
        assert engine.now == 5.0
        # Bypass push() to plant a past event, as a heap corruption would.
        stale = Event(time=1.0, kind=EventKind.CALLBACK, seq=99)
        heapq.heappush(engine._heap, (stale.time, stale.kind, stale.seq, stale))
        with pytest.raises(SimulationError, match="past event"):
            engine.step()

    def test_sanitizer_state_untouched_by_rejected_event(self):
        import heapq

        engine = self._engine_with_sanitizer()
        engine.push(Event(time=5.0, kind=EventKind.CALLBACK))
        engine.step()
        checks_before = engine.sanitizer.checks_run
        last_before = engine.sanitizer._last_event_time
        heapq.heappush(
            engine._heap,
            (1.0, EventKind.CALLBACK, 99, Event(time=1.0, kind=EventKind.CALLBACK, seq=99)),
        )
        with pytest.raises(SimulationError):
            engine.step()
        assert engine.sanitizer.checks_run == checks_before
        assert engine.sanitizer._last_event_time == last_before

    def test_valid_events_still_reach_sanitizer(self):
        engine = self._engine_with_sanitizer()
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        engine.push(Event(time=2.0, kind=EventKind.CALLBACK))
        engine.run()
        assert engine.sanitizer.checks_run == 2
        assert engine.sanitizer._last_event_time == 2.0


class TestHandlerDispatch:
    def test_register_replaces_handler(self):
        engine = Engine()
        first, second = [], []
        engine.register(EventKind.CALLBACK, lambda ev: first.append(ev))
        engine.register(EventKind.CALLBACK, lambda ev: second.append(ev))
        engine.push(Event(time=1.0, kind=EventKind.CALLBACK))
        engine.run()
        assert not first and len(second) == 1

    def test_every_kind_dispatchable(self):
        engine, seen = collecting_engine()
        for offset, kind in enumerate(EventKind):
            engine.push(Event(time=float(offset), kind=kind))
        engine.run()
        assert [k for _, k in seen] == list(EventKind)


class TestEventSlots:
    def test_event_rejects_adhoc_attributes(self):
        event = Event(time=1.0, kind=EventKind.CALLBACK)
        with pytest.raises(AttributeError):
            event.extra = 1  # type: ignore[attr-defined]


class TestDeterminism:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.sampled_from(list(EventKind))),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_pushes_identical_order(self, specs):
        orders = []
        for _ in range(2):
            engine = Engine()
            seen = []
            for kind in EventKind:
                engine.register(kind, lambda ev: seen.append((ev.time, ev.kind, ev.seq)))
            for time, kind in specs:
                engine.push(Event(time=time, kind=kind))
            engine.run()
            orders.append(seen)
        assert orders[0] == orders[1]

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_processing_order_is_time_sorted(self, times):
        engine = Engine()
        seen = []
        engine.register(EventKind.CALLBACK, lambda ev: seen.append(ev.time))
        for time in times:
            engine.push(Event(time=time, kind=EventKind.CALLBACK))
        engine.run()
        assert seen == sorted(times)
