"""DVFS subsystem tests (governors, machine integration, energy)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.schedulers.cfs import CFSScheduler
from repro.sim.dvfs import (
    DVFSPolicy,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    energy_of_dvfs,
)
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from tests.conftest import make_simple_task

FREE = dict(context_switch_cost=0.0, migration_cost=0.0)


def dvfs_machine(policy, n_big=1, n_little=1, **extra):
    return Machine(
        make_topology(n_big, n_little),
        CFSScheduler(),
        MachineConfig(seed=0, dvfs=policy, **dict(FREE, **extra)),
    )


class TestGovernors:
    def test_performance_always_max(self):
        governor = PerformanceGovernor()
        assert governor.choose_scale(0.0) == 1.0
        assert governor.choose_scale(1.0) == 1.0

    def test_powersave_always_floor(self):
        governor = PowersaveGovernor()
        assert governor.choose_scale(1.0) == governor.min_scale

    def test_ondemand_races_to_max(self):
        governor = OndemandGovernor(up_threshold=0.8)
        assert governor.choose_scale(0.9) == 1.0
        assert governor.choose_scale(0.8) == 1.0

    def test_ondemand_scales_with_load(self):
        governor = OndemandGovernor(up_threshold=0.8, min_scale=0.4)
        assert governor.choose_scale(0.4) == pytest.approx(0.5)
        assert governor.choose_scale(0.0) == 0.4  # floored

    def test_ondemand_validation(self):
        with pytest.raises(SimulationError):
            OndemandGovernor(up_threshold=0.0)
        with pytest.raises(SimulationError):
            OndemandGovernor(min_scale=1.5)

    def test_policy_period_validated(self):
        with pytest.raises(SimulationError):
            DVFSPolicy(period_ms=0.0)


class TestMachineIntegration:
    def test_powersave_slows_execution_proportionally(self):
        fast = dvfs_machine(None, n_big=1, n_little=0)
        fast.add_task(make_simple_task(work=50.0))
        t_full = fast.run().makespan

        policy = DVFSPolicy(
            big_governor=PowersaveGovernor(), period_ms=1.0
        )
        slow = dvfs_machine(policy, n_big=1, n_little=0)
        slow.add_task(make_simple_task(work=50.0))
        t_slow = slow.run().makespan
        # The first millisecond runs at full speed, then 0.4x.
        assert t_slow > t_full * 2.0
        assert t_slow < t_full / PowersaveGovernor().min_scale + 2.0

    def test_ondemand_keeps_busy_cluster_fast(self):
        policy = DVFSPolicy(
            big_governor=OndemandGovernor(up_threshold=0.5), period_ms=2.0
        )
        machine = dvfs_machine(policy, n_big=1, n_little=0)
        machine.add_task(make_simple_task(work=30.0))
        result = machine.run()
        # A fully busy core stays at scale 1.0: no slowdown beyond epsilon.
        assert result.makespan == pytest.approx(30.0, rel=0.05)

    def test_residency_recorded_per_scale(self):
        policy = DVFSPolicy(
            big_governor=PowersaveGovernor(), period_ms=5.0
        )
        machine = dvfs_machine(policy, n_big=1, n_little=0)
        machine.add_task(make_simple_task(work=20.0))
        result = machine.run()
        residency = result.core_busy_by_scale[0]
        assert set(residency) == {1.0, PowersaveGovernor().min_scale}
        assert sum(residency.values()) == pytest.approx(
            result.core_busy_time[0]
        )

    def test_work_conserved_across_frequency_changes(self):
        policy = DVFSPolicy(
            big_governor=PowersaveGovernor(),
            little_governor=PowersaveGovernor(),
            period_ms=3.0,
        )
        machine = dvfs_machine(policy, n_big=1, n_little=1)
        tasks = [make_simple_task(f"t{i}", work=10.0, app_id=i) for i in range(3)]
        for task in tasks:
            machine.add_task(task)
        machine.run()
        for task in tasks:
            assert task.work_done == pytest.approx(10.0, rel=1e-6)

    def test_set_frequency_validation(self):
        machine = dvfs_machine(None)
        with pytest.raises(SimulationError):
            machine.set_core_frequency(machine.cores[0], 0.0, 0.0)
        with pytest.raises(SimulationError):
            machine.set_core_frequency(machine.cores[0], 1.5, 0.0)

    def test_no_dvfs_config_means_nominal_speed(self):
        machine = dvfs_machine(None, n_big=1, n_little=0)
        machine.add_task(make_simple_task(work=10.0))
        assert machine.run().makespan == pytest.approx(10.0)


class TestDVFSEnergy:
    def test_downscaling_saves_energy_cubically(self):
        def run_with(governor):
            policy = DVFSPolicy(big_governor=governor, period_ms=1.0)
            machine = dvfs_machine(policy, n_big=1, n_little=0)
            machine.add_task(make_simple_task(work=30.0))
            result = machine.run()
            return result, machine.topology

        full_result, topo = run_with(PerformanceGovernor())
        slow_result, _ = run_with(PowersaveGovernor())
        full_energy = energy_of_dvfs(full_result, topo)
        slow_energy = energy_of_dvfs(slow_result, topo)
        # 0.4^3 active power over 1/0.4 the time: ~0.16x active energy,
        # plus idle; powersave must come out well below performance.
        assert slow_energy < full_energy * 0.6

    def test_energy_positive_and_finite(self):
        policy = DVFSPolicy(period_ms=5.0)
        machine = dvfs_machine(policy)
        machine.add_task(make_simple_task(work=10.0))
        result = machine.run()
        energy = energy_of_dvfs(result, machine.topology)
        assert energy > 0
