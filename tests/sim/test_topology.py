"""Topology construction and core model tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.core import BIG_SPEC, LITTLE_SPEC, Core, CoreKind
from repro.sim.topology import (
    big_only_equivalent,
    little_only_equivalent,
    make_topology,
    standard_topologies,
)
from tests.conftest import FAST_PROFILE, SLOW_PROFILE, make_simple_task


class TestTopology:
    def test_counts(self):
        topo = make_topology(2, 4)
        assert topo.name == "2B4S"
        assert topo.n_big == 2
        assert topo.n_little == 4
        assert topo.n_cores == 6

    def test_big_first_ordering(self):
        topo = make_topology(2, 2, big_first=True)
        kinds = [s.kind for s in topo.specs]
        assert kinds == [CoreKind.BIG, CoreKind.BIG, CoreKind.LITTLE, CoreKind.LITTLE]

    def test_little_first_ordering(self):
        topo = make_topology(2, 2, big_first=False)
        kinds = [s.kind for s in topo.specs]
        assert kinds == [CoreKind.LITTLE, CoreKind.LITTLE, CoreKind.BIG, CoreKind.BIG]

    def test_with_order_keeps_mix(self):
        topo = make_topology(2, 4)
        flipped = topo.with_order(big_first=False)
        assert flipped.n_big == 2
        assert flipped.n_little == 4
        assert flipped.specs[0].kind is CoreKind.LITTLE
        assert flipped.name.endswith("-lf")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            make_topology(0, 0)

    def test_build_cores_assigns_sequential_ids(self):
        cores = make_topology(1, 2).build_cores()
        assert [c.core_id for c in cores] == [0, 1, 2]
        assert cores[0].is_big
        assert not cores[1].is_big

    def test_standard_topologies_match_paper(self):
        topos = standard_topologies()
        assert set(topos) == {"2B2S", "2B4S", "4B2S", "4B4S"}
        assert topos["4B2S"].n_big == 4
        assert topos["4B2S"].n_little == 2

    def test_big_only_equivalent_preserves_core_count(self):
        for topo in standard_topologies().values():
            reference = big_only_equivalent(topo)
            assert reference.n_cores == topo.n_cores
            assert reference.n_little == 0

    def test_little_only_equivalent(self):
        reference = little_only_equivalent(make_topology(2, 2))
        assert reference.n_big == 0
        assert reference.n_cores == 4

    def test_str(self):
        assert str(make_topology(4, 4)) == "4B4S"


class TestCoreSpecs:
    def test_paper_big_core_parameters(self):
        assert BIG_SPEC.freq_ghz == 2.0
        assert BIG_SPEC.l1i_kb == 48
        assert BIG_SPEC.l2_kb == 2048
        assert BIG_SPEC.pipeline == "out-of-order"

    def test_paper_little_core_parameters(self):
        assert LITTLE_SPEC.freq_ghz == 1.2
        assert LITTLE_SPEC.l1i_kb == 32
        assert LITTLE_SPEC.l2_kb == 512
        assert LITTLE_SPEC.pipeline == "in-order"

    def test_kind_other(self):
        assert CoreKind.BIG.other is CoreKind.LITTLE
        assert CoreKind.LITTLE.other is CoreKind.BIG


class TestCoreRates:
    def test_big_core_reference_rate(self):
        core = Core(core_id=0, spec=BIG_SPEC)
        task = make_simple_task(profile=SLOW_PROFILE)
        assert core.rate_for(task) == 1.0

    def test_little_core_inverse_speedup(self):
        core = Core(core_id=0, spec=LITTLE_SPEC)
        fast = make_simple_task(profile=FAST_PROFILE)
        slow = make_simple_task(profile=SLOW_PROFILE)
        assert core.rate_for(fast) == pytest.approx(1.0 / FAST_PROFILE.speedup())
        assert core.rate_for(slow) > core.rate_for(fast)

    def test_little_rate_uses_segment_override(self):
        from repro.workloads.actions import Compute

        core = Core(core_id=0, spec=LITTLE_SPEC)
        task = make_simple_task(profile=FAST_PROFILE)
        task.current_segment = Compute(1.0, speedup=2.0)
        assert core.rate_for(task) == pytest.approx(0.5)

    def test_version_bump(self):
        core = Core(core_id=0, spec=BIG_SPEC)
        v0 = core.sched_version
        assert core.bump_version() == v0 + 1
        assert core.sched_version == v0 + 1

    def test_is_idle(self):
        core = Core(core_id=0, spec=BIG_SPEC)
        assert core.is_idle
        core.current = make_simple_task()
        assert not core.is_idle
