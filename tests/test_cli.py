"""CLI tests (parser wiring + one end-to-end run command)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        for command in (
            "train", "tables", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "summary", "run", "trace", "all", "sweep", "dash",
        ):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.func)
        # Subcommands with required positionals.
        for argv in (
            ["sweep-report", "report.json"],
            ["diff", "a.jsonl", "b.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]
            assert callable(args.func)

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "sweep", "--mixes", "Sync-1", "--configs",
             "2B2S", "--schedulers", "linux,colab",
             "--timeline", "/tmp/t.json", "--report", "/tmp/r.json",
             "--no-progress", "--sanitize"]
        )
        assert args.jobs == 4
        assert args.mixes == "Sync-1"
        assert args.configs == "2B2S"
        assert args.schedulers == "linux,colab"
        assert args.timeline == "/tmp/t.json"
        assert args.report == "/tmp/r.json"
        assert args.no_progress
        assert args.sanitize

    def test_global_options(self):
        parser = build_parser()
        args = parser.parse_args(["--seed", "7", "--scale", "0.2", "fig4"])
        assert args.seed == 7
        assert args.scale == 0.2
        assert not args.oracle

    def test_oracle_flag(self):
        args = build_parser().parse_args(["--oracle", "summary"])
        assert args.oracle

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--mix", "Rand-5", "--config", "4B2S",
             "--schedulers", "linux,gts", "--json", "/tmp/x.json"]
        )
        assert args.mix == "Rand-5"
        assert args.config == "4B2S"
        assert args.schedulers == "linux,gts"
        assert args.json == "/tmp/x.json"

    def test_verbose_flag_counts(self):
        parser = build_parser()
        assert parser.parse_args(["summary"]).verbose == 0
        assert parser.parse_args(["-v", "summary"]).verbose == 1
        assert parser.parse_args(["-vv", "summary"]).verbose == 2

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "--mix", "Comm-1", "--scheduler", "wash",
             "--out", "/tmp/t.json", "--jsonl", "/tmp/t.jsonl",
             "--metrics", "/tmp/m.json", "--profile"]
        )
        assert args.mix == "Comm-1"
        assert args.scheduler == "wash"
        assert args.out == "/tmp/t.json"
        assert args.jsonl == "/tmp/t.jsonl"
        assert args.metrics == "/tmp/m.json"
        assert args.profile

    def test_trace_timeseries_flag(self):
        parser = build_parser()
        assert not parser.parse_args(["trace"]).timeseries
        assert parser.parse_args(["trace", "--timeseries"]).timeseries

    def test_dash_options(self):
        args = build_parser().parse_args(
            ["dash", "--mix", "Sync-2", "--scheduler", "colab",
             "--out", "/tmp/d.html", "--sweep-report", "/tmp/r.json",
             "--bench-dir", "/tmp", "--ledger-limit", "9"]
        )
        assert args.command == "dash"
        assert args.mix == "Sync-2"
        assert args.scheduler == "colab"
        assert args.out == "/tmp/d.html"
        assert args.sweep_report == "/tmp/r.json"
        assert args.bench_dir == "/tmp"
        assert args.ledger_limit == 9

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_sanitize_flags(self):
        parser = build_parser()
        assert not parser.parse_args(["run"]).sanitize
        assert parser.parse_args(["run", "--sanitize"]).sanitize
        assert not parser.parse_args(["trace"]).sanitize
        assert parser.parse_args(["trace", "--sanitize"]).sanitize

    def test_lint_options(self):
        parser = build_parser()
        args = parser.parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == ["src/repro"]
        assert args.format == "text"
        assert not args.list_rules

        args = parser.parse_args(
            ["lint", "a.py", "b/", "--format", "json", "--list-rules"]
        )
        assert args.paths == ["a.py", "b/"]
        assert args.format == "json"
        assert args.list_rules


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "repro" / "sim" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nnow = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nnow = time.time()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == "DET001"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET001", "DET002", "OBS001", "OBS002", "KERN001", "ERR001",
        ):
            assert code in out

    def test_repo_source_is_clean(self, capsys):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        assert main(["lint", str(src)]) == 0


class TestAnalyzeCommand:
    def test_parser_options(self):
        parser = build_parser()
        args = parser.parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.paths == ["src/repro"]
        assert args.format == "text"
        assert args.baseline is None
        assert not args.write_baseline
        args = parser.parse_args(
            ["analyze", "src/repro", "--format", "sarif",
             "--baseline", "b.json", "--sarif", "out.sarif"]
        )
        assert args.format == "sarif"
        assert args.baseline == "b.json"
        assert args.sarif == "out.sarif"

    def tainted_tree(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "digest.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n"
            "def run_digest(result):\n"
            "    return time.time()\n"
        )
        return tmp_path

    def test_findings_exit_nonzero_with_chain(self, tmp_path, capsys):
        tree = self.tainted_tree(tmp_path)
        assert main(["analyze", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "ANA001" in out
        assert "via run_digest" in out

    def test_json_format_shares_lint_schema(self, tmp_path, capsys):
        tree = self.tainted_tree(tmp_path)
        assert main(["analyze", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "analyze"
        assert payload["schema"] == 1
        assert payload["violations"][0]["code"] == "ANA001"
        assert payload["violations"][0]["suppressed"] is False

    def test_baseline_round_trip(self, tmp_path, capsys):
        tree = self.tainted_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["analyze", str(tree), "--baseline", str(baseline),
             "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["analyze", str(tree), "--baseline", str(baseline)]
        ) == 0
        assert "no violations" in capsys.readouterr().out

    def test_sarif_artifact_written(self, tmp_path, capsys):
        tree = self.tainted_tree(tmp_path)
        artifact = tmp_path / "out.sarif"
        assert main(["analyze", str(tree), "--sarif", str(artifact)]) == 1
        document = json.loads(artifact.read_text())
        assert document["version"] == "2.1.0"

    def test_list_rules_includes_ana_family(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("ANA001", "ANA002", "ANA003", "ANA004"):
            assert code in out

    def test_repo_source_is_clean_modulo_baseline(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        assert main(
            ["analyze", str(root / "src" / "repro"),
             "--baseline", str(root / ".sanitize-baseline.json")]
        ) == 0


class TestRunCommand:
    def test_run_point_and_json_export(self, tmp_path, capsys):
        out = tmp_path / "point.json"
        code = main(
            [
                "--scale", "0.05", "--oracle",
                "run", "--mix", "Sync-1", "--config", "2B2S",
                "--schedulers", "linux,colab", "--json", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "H_ANTT" in stdout
        assert "fairness" in stdout
        payload = json.loads(out.read_text())
        assert payload["count"] == 2
        schedulers = {p["scheduler"] for p in payload["points"]}
        assert schedulers == {"linux", "colab"}


class TestSanitizedRunCommand:
    def test_run_with_sanitizer_matches_plain_run(self, tmp_path, capsys):
        """End-to-end --sanitize run: completes and is bit-identical."""
        plain = tmp_path / "plain.json"
        checked = tmp_path / "checked.json"
        base = [
            "--scale", "0.05", "--oracle",
            "run", "--mix", "Sync-1", "--config", "2B2S",
            "--schedulers", "linux,colab",
        ]
        assert main(base + ["--json", str(plain)]) == 0
        assert main(base + ["--sanitize", "--json", str(checked)]) == 0
        capsys.readouterr()
        assert json.loads(plain.read_text()) == json.loads(checked.read_text())


class TestSweepCommand:
    def test_sweep_writes_timeline_and_report(self, tmp_path, capsys):
        timeline = tmp_path / "timeline.json"
        report_path = tmp_path / "report.json"
        code = main(
            [
                "--scale", "0.04", "--oracle", "--jobs", "2",
                "sweep", "--mixes", "Sync-1", "--configs", "2B2S",
                "--schedulers", "linux,colab",
                "--timeline", str(timeline), "--report", str(report_path),
                "--no-progress",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "H_ANTT" in stdout
        assert "sweep report" in stdout

        document = json.loads(timeline.read_text())
        names = {
            record["args"]["name"]
            for record in document["traceEvents"]
            if record["ph"] == "M" and record["name"] == "process_name"
        }
        assert "sweep parent [orchestration]" in names
        assert any(name.startswith("worker 0") for name in names)

        report = json.loads(report_path.read_text())
        assert report["points_total"] == 2
        assert report["points_executed"] + report["points_from_cache"] == 2
        assert report["histograms"]["point_wall_s"]["count"] >= 0

    def test_sweep_report_reads_back(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(
            [
                "--scale", "0.04", "--oracle",
                "sweep", "--mixes", "Sync-1", "--configs", "2B2S",
                "--schedulers", "linux",
                "--timeline", str(tmp_path / "t.json"),
                "--report", str(report_path), "--no-progress",
            ]
        )
        capsys.readouterr()
        assert main(["sweep-report", str(report_path)]) == 0
        assert "sweep report" in capsys.readouterr().out
        assert main(["sweep-report", str(report_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points_total"] == 1


class TestDiffCommand:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        trace = tmp_path / "a.jsonl"
        trace.write_text('{"t": 1.0, "kind": "dispatch"}\n')
        assert main(["diff", str(trace), str(trace)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_traces_exit_nonzero(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"t": 1.0, "kind": "dispatch"}\n')
        b.write_text('{"t": 2.0, "kind": "dispatch"}\n')
        assert main(["diff", str(a), str(b)]) == 1
        assert "diverge at record 0" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_writes_chrome_trace_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "--scale", "0.05", "--oracle",
                "trace", "--mix", "Sync-1", "--config", "2B2S",
                "--scheduler", "colab", "--out", str(out),
                "--jsonl", str(jsonl), "--metrics", str(metrics),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout.lower()
        assert "makespan" in stdout

        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in document["traceEvents"]}
        assert {"M", "X"} <= phases  # per-core tracks + duration slices

        lines = jsonl.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)

        snapshot = json.loads(metrics.read_text())
        assert "sched.migrations" in snapshot["counters"]
        assert "core.0.utilization" in snapshot["gauges"]
        assert "rq.mean_depth" in snapshot["gauges"]
        assert "futex.total_wait_ms" in snapshot["gauges"]

    def test_trace_timeseries_adds_counter_tracks(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "--scale", "0.05", "--oracle", "--no-cache",
                "trace", "--mix", "Sync-1", "--config", "2B2S",
                "--scheduler", "colab", "--out", str(out),
                "--timeseries",
            ]
        )
        assert code == 0
        assert "timeline" in capsys.readouterr().out
        document = json.loads(out.read_text())
        counters = [
            e for e in document["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters
        assert {e["pid"] for e in counters} == {2}
        assert any(e["name"] == "rq.depth.mean" for e in counters)


class TestDashCommand:
    ARGS = [
        "--scale", "0.05", "--oracle", "--no-cache", "--no-ledger",
        "dash", "--mix", "Sync-1", "--config", "2B2S",
        "--scheduler", "colab",
    ]

    def test_dash_writes_self_contained_html(self, tmp_path, capsys):
        out = tmp_path / "dashboard.html"
        code = main(self.ARGS + ["--out", str(out), "--bench-dir", str(tmp_path)])
        assert code == 0
        assert "self-contained" in capsys.readouterr().out
        document = out.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "<script" not in document.lower()
        assert "<svg" in document
        for heading in (
            "Run timeline (sim-time)", "Sweep report",
            "Ledger trends", "Benchmarks",
        ):
            assert f"<h2>{heading}</h2>" in document

    def test_dash_reruns_byte_identical(self, tmp_path, capsys):
        first = tmp_path / "a.html"
        second = tmp_path / "b.html"
        assert main(self.ARGS + ["--out", str(first), "--bench-dir", str(tmp_path)]) == 0
        assert main(self.ARGS + ["--out", str(second), "--bench-dir", str(tmp_path)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_dash_includes_bench_artifacts(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(json.dumps({
            "name": "demo",
            "timings": {"run_s": 0.5},
            "asserts": {
                "bound": {"measured": 0.1, "bound": 1.0, "op": "<", "ok": True}
            },
        }))
        out = tmp_path / "dashboard.html"
        code = main(self.ARGS + ["--out", str(out), "--bench-dir", str(tmp_path)])
        assert code == 0
        assert "1 bench artifact(s)" in capsys.readouterr().out
        document = out.read_text()
        assert "demo" in document
        assert '<span class="ok">ok</span>' in document


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory, never the real one."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


class TestReportCommand:
    BASE = ["--scale", "0.05", "--oracle", "--no-cache"]
    POINT = ["--mix", "Sync-1", "--config", "2B2S", "--scheduler", "colab"]

    def test_fresh_report_renders_attribution_and_quality(self, capsys):
        code = main(self.BASE + ["report"] + self.POINT)
        assert code == 0
        out = capsys.readouterr().out
        assert "running_big" in out
        assert "decisions linked" in out
        assert "colab_pick" in out

    def test_json_report_states_sum_to_turnaround(self, capsys):
        code = main(self.BASE + ["report"] + self.POINT + ["--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "colab"
        assert payload["attribution"]["tasks"]
        for row in payload["attribution"]["tasks"]:
            total = sum(row["state_ms"].values())
            assert total == pytest.approx(row["turnaround_ms"], abs=1e-6)
        assert payload["decision_quality"]

    def test_report_by_recorded_ledger_id(self, capsys):
        assert main(self.BASE + ["report"] + self.POINT) == 0
        capsys.readouterr()
        assert main(["report", "1"]) == 0
        out = capsys.readouterr().out
        assert "ledger run 1" in out
        assert "running_big" in out


class TestLedgerCommands:
    RUN = [
        "--scale", "0.05", "--oracle", "--no-cache",
        "run", "--mix", "Sync-1", "--config", "2B2S",
        "--schedulers", "colab",
    ]
    TREND = [
        "ledger", "trend", "--mix", "Sync-1", "--config", "2B2S",
        "--scheduler", "colab",
    ]

    def test_runs_record_and_trend_judges(self, capsys):
        for _ in range(3):
            assert main(self.RUN) == 0
        capsys.readouterr()
        assert main(["ledger", "list"]) == 0
        assert "sweep-point" in capsys.readouterr().out
        assert main(self.TREND) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "REGRESSED" not in out

    def test_trend_exits_nonzero_on_injected_regression(
        self, tmp_path, capsys
    ):
        from repro.obs.ledger import Ledger

        with Ledger(tmp_path / "ledger" / "ledger.db") as ledger:
            for makespan in (10.0, 10.1, 9.9, 13.5):
                ledger.record_run(
                    mix="Sync-1", config="2B2S", scheduler="colab",
                    metrics={"makespan": makespan},
                )
        assert main(self.TREND) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_show_and_compare(self, capsys):
        for _ in range(2):
            assert main(self.RUN) == 0
        capsys.readouterr()
        assert main(["ledger", "show", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scheduler"] == "colab"
        assert main(["ledger", "compare", "1", "2"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_no_ledger_flag_disables_recording(self, capsys):
        assert main(["--no-ledger"] + self.RUN[:4] + self.RUN[4:]) == 0
        capsys.readouterr()
        assert main(["ledger", "list"]) == 0
        assert "empty" in capsys.readouterr().out


class TestTraceTaskTracks:
    def test_trace_emits_task_state_process(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "--scale", "0.05", "--oracle", "--no-cache",
                "trace", "--mix", "Sync-1", "--config", "2B2S",
                "--scheduler", "colab", "--out", str(out), "--task-tracks",
            ]
        )
        assert code == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        task_records = [
            r for r in document["traceEvents"] if r.get("pid") == 1
        ]
        assert any(r["ph"] == "X" for r in task_records)
