"""Cross-module integration tests and strong cross-scheduler invariants."""

from __future__ import annotations

import pytest

from repro.schedulers import make_scheduler
from repro.sim.machine import Machine, MachineConfig
from repro.sim.topology import make_topology
from repro.workloads.benchmarks import instantiate_benchmark
from repro.workloads.mixes import MIXES
from repro.workloads.programs import ProgramEnv

ALL_SCHEDULERS = ("linux", "wash", "colab", "gts")


def run_mix(mix_index, scheduler_name, n_big=2, n_little=2, scale=0.05, seed=3):
    machine = Machine(
        make_topology(n_big, n_little),
        make_scheduler(scheduler_name),
        MachineConfig(seed=seed),
    )
    env = ProgramEnv.for_machine(machine, work_scale=scale)
    for instance in MIXES[mix_index].instantiate(env):
        machine.add_program(instance)
    return machine, machine.run()


class TestAllSchedulersAllClasses:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    @pytest.mark.parametrize(
        "mix_index", ["Sync-3", "NSync-3", "Comm-3", "Comp-3", "Rand-5"]
    )
    def test_every_scheduler_completes_every_class(self, scheduler, mix_index):
        _machine, result = run_mix(mix_index, scheduler)
        assert result.makespan > 0
        expected_apps = {name for name, _ in MIXES[mix_index].programs}
        assert set(result.app_names.values()) == expected_apps

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_work_conservation_under_every_policy(self, scheduler):
        machine, _result = run_mix("NSync-1", scheduler)
        for task in machine.tasks:
            assert task.work_done > 0
            assert task.is_done


class TestSymmetricMachineEquivalence:
    """On an all-big machine, AMP-awareness must be (near) irrelevant.

    Speedup labels degenerate (every core is the same), so the policies
    should produce similar turnarounds -- a strong regression guard
    against AMP machinery distorting the symmetric case.
    """

    def test_policies_agree_on_symmetric_hardware(self):
        makespans = {}
        for scheduler in ALL_SCHEDULERS:
            machine = Machine(
                make_topology(4, 0),
                make_scheduler(scheduler),
                MachineConfig(seed=9),
            )
            env = ProgramEnv.for_machine(machine, work_scale=0.1)
            machine.add_program(
                instantiate_benchmark("blackscholes", env, 0, n_threads=6)
            )
            makespans[scheduler] = machine.run().makespan
        spread = max(makespans.values()) / min(makespans.values())
        assert spread < 1.25, makespans


class TestScaleInvariance:
    """Shrinking work_scale shrinks time but preserves structure."""

    def test_makespan_scales_roughly_linearly(self):
        times = {}
        for scale in (0.05, 0.1):
            machine = Machine(
                make_topology(2, 2), make_scheduler("linux"), MachineConfig(seed=4)
            )
            env = ProgramEnv.for_machine(machine, work_scale=scale)
            machine.add_program(
                instantiate_benchmark("radix", env, 0, n_threads=4)
            )
            times[scale] = machine.run().makespan
        ratio = times[0.1] / times[0.05]
        assert 1.6 < ratio < 2.4

    def test_sync_structure_preserved_across_scales(self):
        """Scaling shrinks chunk sizes, not chunk counts: the number of
        synchronisation operations is (nearly) scale-invariant, which is
        exactly what makes reduced-scale sweeps structurally faithful."""
        waits = {}
        for scale in (0.05, 0.3):
            machine = Machine(
                make_topology(2, 2), make_scheduler("linux"), MachineConfig(seed=4)
            )
            env = ProgramEnv.for_machine(machine, work_scale=scale)
            machine.add_program(
                instantiate_benchmark("fluidanimate", env, 0, n_threads=4)
            )
            machine.run()
            waits[scale] = machine.futexes.waits_by_kind.get("lock", 0)
        assert waits[0.05] == pytest.approx(waits[0.3], rel=0.1)


class TestOrderSensitivity:
    def test_core_order_changes_results(self):
        """Big-first vs little-first runs genuinely differ (the reason the
        paper averages over both)."""
        results = []
        for big_first in (True, False):
            machine = Machine(
                make_topology(2, 2, big_first=big_first),
                make_scheduler("linux"),
                MachineConfig(seed=5),
            )
            env = ProgramEnv.for_machine(machine, work_scale=0.08)
            for instance in MIXES["Comm-1"].instantiate(env):
                machine.add_program(instance)
            results.append(machine.run().makespan)
        assert results[0] != results[1]


class TestRegressionGuards:
    def test_dequeue_after_vruntime_change_while_queued(self):
        """Regression: dequeue must use the insertion-time key even if a
        scheduler mutated vruntime while the task was queued."""
        from repro.kernel.runqueue import RunQueue
        from tests.conftest import make_simple_task

        rq = RunQueue(0)
        task = make_simple_task()
        task.mark_ready()
        task.vruntime = 1.0
        rq.enqueue(task)
        task.vruntime = 99.0  # mutated in place
        rq.dequeue(task)  # must not raise
        assert len(rq) == 0

    def test_empty_little_cluster_machines_work(self):
        for scheduler in ALL_SCHEDULERS:
            machine = Machine(
                make_topology(2, 0), make_scheduler(scheduler), MachineConfig(seed=1)
            )
            env = ProgramEnv.for_machine(machine, work_scale=0.05)
            machine.add_program(instantiate_benchmark("fft", env, 0, n_threads=2))
            assert machine.run().makespan > 0

    def test_single_little_core_machines_work(self):
        for scheduler in ALL_SCHEDULERS:
            machine = Machine(
                make_topology(0, 1), make_scheduler(scheduler), MachineConfig(seed=1)
            )
            env = ProgramEnv.for_machine(machine, work_scale=0.03)
            machine.add_program(
                instantiate_benchmark("water_spatial", env, 0, n_threads=2)
            )
            assert machine.run().makespan > 0
